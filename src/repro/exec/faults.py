"""Deterministic fault injection for the sweep-execution subsystem.

The test suite (and ``python -m repro.exec selftest``) needs to prove
that a sweep survives worker SIGKILLs, hangs, transient exceptions and
store I/O errors *with bit-identical results* — which requires faults
that strike at chosen cells, a chosen number of times, reproducibly.
This module provides exactly that and nothing else: a fault *plan* is
a list of :class:`FaultSpec` entries carried in the :data:`FAULTS_ENV`
environment variable (JSON), so forked and spawned pool workers inherit
it automatically, and every hook is attempt- or count-gated so a replay
of the same sweep injects the same faults at the same points.

Hook points:

* :func:`before_task` — called by the job pools immediately before a
  job attempt runs (in the worker process for the forked pool, in the
  caller for the serial pool).  Kinds ``kill`` (SIGKILL the process),
  ``hang`` (sleep ``seconds``) and ``exc`` (raise
  :class:`TransientFault`) fire here when the job-key string contains
  ``match`` and ``after <= attempt < after + times`` — retries carry
  the attempt number, so "fail the first attempt, succeed on retry" is
  expressible directly.
* the artifact store's write path — kinds ``store_err`` (raise
  ``OSError``) and ``store_kill`` (SIGKILL between the temp-file write
  and its atomic ``os.replace``) fire against targets of the form
  ``"<kind>/<fingerprint>:<object|index>"``.  These are gated by a
  per-process call counter (``after``/``times``), or — for exactly-once
  semantics *across* processes (a retried cell must not be killed again
  by the replacement worker) — by a ``token`` file created with
  ``O_EXCL``: only the creator injects.
* the serve protocol's framing path
  (``repro.serve.protocol._net_fault_hook``) — kinds ``net_refuse``
  (raise ``ConnectionRefusedError``), ``net_drop`` (write half the
  frame, then raise ``ConnectionResetError`` — the peer sees a
  mid-frame reset), ``net_delay`` (sleep ``seconds``, then deliver
  normally) and ``net_garbage`` (replace the frame with undecodable
  bytes).  ``match`` tests the routing target (``"host:port"`` on the
  client side) *and* the frame text, so a plan can partition one node
  of a fleet or strike one request op — including the federated-store
  ops (``match="store_get"`` garbles or drops exactly the remote
  read-through path of :mod:`repro.store.remote`, whose client frames
  carry the op name).  Gating mirrors the store kinds: per-process
  match counter or cross-process ``O_EXCL`` token.

When no plan is active every hook is a single ``is-None`` check; the
fault-free hot path does not pay for this module's existence.

Hazard note: a ``kill``/``hang`` spec matches wherever the hook runs —
including the *parent* process when the serial pool executes a matched
cell (that is how the SIGKILL-mid-sweep tests interrupt a run: they run
the sweep in a disposable child process).  Plans are a test harness,
not a production knob.
"""

from __future__ import annotations

import json
import os
import signal
import sys
import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

#: Environment variable carrying the active fault plan (JSON list).
FAULTS_ENV = "REPRO_FAULTS"

_TASK_KINDS = frozenset({"kill", "hang", "exc"})
_STORE_KINDS = frozenset({"store_err", "store_kill"})
_NET_KINDS = frozenset({"net_refuse", "net_drop", "net_delay",
                        "net_garbage"})


class TransientFault(RuntimeError):
    """The injected transient exception (``kind="exc"``)."""


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault.

    ``match`` is a plain substring test against the job-key string
    (task kinds) or the store-write target (store kinds); empty matches
    everything.  ``after``/``times`` bound *when* it fires: task kinds
    compare against the attempt number, store kinds against a
    per-process counter of matching calls.  ``token``, when set, makes
    a store fault fire at most once across *all* processes sharing the
    path (the injector creates it with ``O_EXCL``).
    """

    kind: str
    match: str = ""
    times: int = 1
    after: int = 0
    seconds: float = 600.0
    token: str = ""

    def __post_init__(self) -> None:
        if self.kind not in _TASK_KINDS | _STORE_KINDS | _NET_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")


#: The active plan; () means fault injection is off.
_PLAN: Tuple[FaultSpec, ...] = ()
#: Per-process match counters for store-fault gating.
_STORE_COUNTS: Dict[Tuple[str, str], int] = {}
#: Per-process match counters for net-fault gating.
_NET_COUNTS: Dict[Tuple[str, str], int] = {}
_parse_warned = False


def encode_plan(*specs: FaultSpec) -> str:
    """The :data:`FAULTS_ENV` value describing ``specs``."""
    rows = []
    for spec in specs:
        row = {"kind": spec.kind}
        if spec.match:
            row["match"] = spec.match
        if spec.times != 1:
            row["times"] = spec.times
        if spec.after:
            row["after"] = spec.after
        if spec.seconds != 600.0:
            row["seconds"] = spec.seconds
        if spec.token:
            row["token"] = spec.token
        rows.append(row)
    return json.dumps(rows)


def _parse_plan(raw: str) -> Tuple[FaultSpec, ...]:
    global _parse_warned
    try:
        rows = json.loads(raw)
        if not isinstance(rows, list):
            raise ValueError("plan must be a JSON list")
        return tuple(
            FaultSpec(
                kind=str(row["kind"]),
                match=str(row.get("match", "")),
                times=int(row.get("times", 1)),
                after=int(row.get("after", 0)),
                seconds=float(row.get("seconds", 600.0)),
                token=str(row.get("token", "")),
            )
            for row in rows
        )
    except (KeyError, TypeError, ValueError) as exc:
        if not _parse_warned:
            _parse_warned = True
            print(f"warning: ignoring unparseable ${FAULTS_ENV}: {exc}",
                  file=sys.stderr)
        return ()


def refresh() -> None:
    """Re-read the plan from the environment and (un)install hooks.

    Called automatically at import; tests and the ``active_plan``
    context manager call it after mutating :data:`FAULTS_ENV`.
    """
    global _PLAN
    raw = os.environ.get(FAULTS_ENV, "")
    _PLAN = _parse_plan(raw) if raw else ()
    _STORE_COUNTS.clear()
    _NET_COUNTS.clear()
    _install_store_hook()
    _install_net_hook()


def enabled() -> bool:
    return bool(_PLAN)


def _install_store_hook() -> None:
    """Point the store's write-path hook at us iff the plan needs it.

    The import is lazy and one-directional (``repro.store`` never
    imports ``repro.exec``): with no store faults planned the store
    module keeps a ``None`` hook and pays one attribute test per write.
    """
    wants = any(spec.kind in _STORE_KINDS for spec in _PLAN)
    if not wants and "repro.store.store" not in sys.modules:
        return
    from repro.store import store as store_module

    store_module._write_fault_hook = _store_write_hook if wants else None


def _install_net_hook() -> None:
    """Point the serve protocol's framing hook at us iff needed.

    Same shape as :func:`_install_store_hook`: lazy, one-directional
    (``repro.serve.protocol`` never imports ``repro.exec``), and with
    no net faults planned an already-imported protocol module is reset
    to a ``None`` hook.
    """
    wants = any(spec.kind in _NET_KINDS for spec in _PLAN)
    if not wants and "repro.serve.protocol" not in sys.modules:
        return
    from repro.serve import protocol as protocol_module

    protocol_module._net_fault_hook = _net_fault_hook if wants else None


class active_plan:
    """Context manager: activate a plan in this process *and* the env.

    Sets :data:`FAULTS_ENV` (so pool workers inherit the plan) and
    refreshes the module state; restores both on exit.
    """

    def __init__(self, *specs: FaultSpec) -> None:
        self._specs = specs
        self._saved: Optional[str] = None

    def __enter__(self) -> "active_plan":
        self._saved = os.environ.get(FAULTS_ENV)
        os.environ[FAULTS_ENV] = encode_plan(*self._specs)
        refresh()
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._saved is None:
            os.environ.pop(FAULTS_ENV, None)
        else:
            os.environ[FAULTS_ENV] = self._saved
        refresh()


def _claim_token(path: str) -> bool:
    """Atomically claim a cross-process once-token; True for the winner."""
    try:
        fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
    except OSError:
        return False
    os.close(fd)
    return True


def before_task(key: object, attempt: int) -> None:
    """Pool hook: runs in the executing process before a job attempt."""
    if not _PLAN:
        return
    text = str(key)
    for spec in _PLAN:
        if spec.kind not in _TASK_KINDS or spec.match not in text:
            continue
        if not (spec.after <= attempt < spec.after + spec.times):
            continue
        if spec.token and not _claim_token(spec.token):
            continue
        if spec.kind == "exc":
            raise TransientFault(
                f"injected transient fault at {text} (attempt {attempt})"
            )
        if spec.kind == "hang":
            time.sleep(spec.seconds)
            continue
        # kill: emulate an OOM-killer / preempted host.
        os.kill(os.getpid(), signal.SIGKILL)


def _store_write_hook(target: str) -> None:
    """Store hook: runs between an artifact's temp write and replace."""
    if not _PLAN:  # pragma: no cover - uninstalled on refresh
        return
    for spec in _PLAN:
        if spec.kind not in _STORE_KINDS or spec.match not in target:
            continue
        if spec.token:
            if not _claim_token(spec.token):
                continue
        else:
            gate = (spec.kind, spec.match)
            count = _STORE_COUNTS.get(gate, 0)
            _STORE_COUNTS[gate] = count + 1
            if not (spec.after <= count < spec.after + spec.times):
                continue
        if spec.kind == "store_err":
            raise OSError(f"injected store I/O error at {target}")
        os.kill(os.getpid(), signal.SIGKILL)


def _net_fault_hook(direction: str, target: str, stream: object,
                    data: bytes) -> bool:
    """Protocol framing hook: emulate refused/reset/slow/noisy links.

    Runs in whichever process calls ``write_message``/``read_message``
    (client or daemon).  A spec matches when ``spec.match`` appears in
    the routing target *or* in the frame text; write-direction calls
    carry the full frame, read-direction calls only the target, so
    content-matched specs strike the sender while target-matched specs
    (the per-node partition case) strike both directions.
    """
    if not _PLAN:  # pragma: no cover - uninstalled on refresh
        return False
    text = data.decode("utf-8", "replace") if data else ""
    for spec in _PLAN:
        if spec.kind not in _NET_KINDS:
            continue
        if spec.match and spec.match not in target and spec.match not in text:
            continue
        if direction == "read" and spec.kind != "net_delay":
            # Non-delay kinds fire once per round trip, on the write
            # side (a dropped/refused/garbled frame already implies the
            # response never arrives intact).
            continue
        if spec.token:
            if not _claim_token(spec.token):
                continue
        else:
            gate = (spec.kind, spec.match)
            count = _NET_COUNTS.get(gate, 0)
            _NET_COUNTS[gate] = count + 1
            if not (spec.after <= count < spec.after + spec.times):
                continue
        if spec.kind == "net_refuse":
            raise ConnectionRefusedError(
                f"injected connection refusal ({target or 'local'})")
        if spec.kind == "net_delay":
            time.sleep(spec.seconds)
            continue
        write = getattr(stream, "write", None)
        flush = getattr(stream, "flush", None)
        if spec.kind == "net_drop":
            # Half a frame, then a reset: the peer sees a line that
            # never terminates and a connection that dies mid-read.
            try:
                if write is not None:
                    write(data[: max(1, len(data) // 2)])
                if flush is not None:
                    flush()
            except OSError:
                pass
            raise ConnectionResetError(
                f"injected mid-frame reset ({target or 'local'})")
        # net_garbage: the frame arrives, but as undecodable bytes.
        if write is not None:
            write(b"\xfe\xedgarbage\xff\x00 not json\n")
        if flush is not None:
            flush()
        return True
    return False


# Pick the plan up at import time: forked workers inherit module state
# anyway, but spawned workers (and plain subprocesses, like the
# SIGKILL-mid-sweep child runs) only share the environment.
refresh()
