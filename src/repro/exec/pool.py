"""Pluggable, fault-tolerant job pools for sweep execution.

``run_matrix`` historically drove a bare ``ProcessPoolExecutor``: one
worker OOM-kill raised ``BrokenProcessPool``, aborted the whole sweep,
and discarded every finished-but-uncollected cell.  This module is the
replacement seam — an abstract :class:`Pool` with two backends behind
one interface (the shape of the vusec instrumentation-infra job pool,
cited in ROADMAP.md, grown toward cluster backends later):

:class:`SerialPool`
    Runs jobs in the calling process, in order.  Still applies the
    retry/backoff/fallback policy (and, where the platform allows,
    ``SIGALRM``-based attempt timeouts), so the serial path and the
    parallel path degrade identically.

:class:`ForkServerPool`
    A process pool built directly on ``multiprocessing`` primitives —
    one dedicated pipe per worker — because fault tolerance needs what
    ``ProcessPoolExecutor`` hides: *which* job each worker holds.  The
    parent therefore knows exactly which cells a crashed worker loses,
    rebuilds just that worker, and re-dispatches just those cells; a
    worker over its attempt deadline is SIGKILLed the same way.  Workers
    are started after the caller pre-links shared images, so the
    existing fork-server amortization (and bit-identical results) carry
    over unchanged.

Failure ladder, per :class:`~repro.exec.policy.FaultPolicy`:

1. an attempt fails (exception / crash / timeout) → bounded retries
   with exponential, deterministically-jittered backoff;
2. the primary attempts are exhausted and the job carries
   ``fallback_args`` → one final attempt with them (``run_matrix`` uses
   this to retry an ``accel`` cell under ``interp``), one warning per
   pool;
3. still failing → the job lands in the pool's failure set; after all
   jobs settle, :class:`~repro.exec.policy.SweepError` names every
   failed cell (everything that completed was already delivered through
   the ``completed`` callback);
4. orthogonally, more than ``max_rebuilds`` worker *crashes* degrade
   the forked pool to serial in-parent execution (one warning) — a host
   that keeps killing workers still finishes its sweep.

Results are delivered twice: through the optional ``completed``
callback the moment each job settles (out of order — this is where
``run_matrix`` persists to the store, so nothing finished is ever lost
to a later failure), and in the dict ``run`` returns.
"""

from __future__ import annotations

import heapq
import os
import signal
import threading
import time
import traceback
from collections import deque
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, \
    Tuple

import multiprocessing
from multiprocessing.connection import wait as _mp_wait

from repro import obs
from repro.common.warnonce import warn_once
from repro.exec import faults
from repro.exec.policy import FaultPolicy, SweepError, backoff_delay

__all__ = ["Job", "Pool", "SerialPool", "ForkServerPool"]


class Job:
    """One unit of work: ``fn(*args)`` under a key.

    ``fallback_args`` — when set, a final attempt made with these after
    the primary args exhaust the retry budget (step 2 of the failure
    ladder).  The pool mutates only the bookkeeping fields
    (``attempt``, ``failures``, ``used_fallback``); construct a fresh
    ``Job`` per ``run``.
    """

    __slots__ = ("key", "args", "fallback_args", "attempt", "failures",
                 "used_fallback")

    def __init__(self, key: Any, args: Tuple = (),
                 fallback_args: Optional[Tuple] = None) -> None:
        self.key = key
        self.args = tuple(args)
        self.fallback_args = (
            tuple(fallback_args) if fallback_args is not None else None
        )
        self.attempt = 0          # number of the next attempt, 0-based
        self.failures: List[str] = []
        self.used_fallback = False


class Pool:
    """Abstract job pool: run jobs under a fault policy."""

    def __init__(self, policy: Optional[FaultPolicy] = None) -> None:
        self.policy = policy or FaultPolicy()
        #: Per-pool warn-once registry (see repro.common.warn_once):
        #: fallback/degradation notices fire once per *pool*, not once
        #: per process.
        self._warn_keys: Set[str] = set()
        #: Utilization surface, uniform across backends: job *attempts*
        #: handed to an execution slot, and attempts that came back
        #: successfully.  Backends with real workers also break these
        #: down per slot (see :meth:`worker_stats`).
        self.jobs_dispatched = 0
        self.jobs_completed = 0

    def worker_stats(self) -> Dict[str, Any]:
        """Dispatch/completion counts, pool-wide and per worker slot.

        The base shape (``workers=[]``) covers in-process backends; the
        forked pool fills ``workers`` with one entry per live worker.
        """
        return {
            "dispatched": self.jobs_dispatched,
            "completed": self.jobs_completed,
            "workers": [],
        }

    def run(
        self,
        fn: Callable,
        jobs: Sequence[Job],
        completed: Optional[Callable[[Job, Any], None]] = None,
    ) -> Dict[Any, Any]:
        """Execute every job; return ``{key: result}``.

        ``completed(job, result)`` fires in the parent as each job
        settles successfully (possibly out of submission order).
        Raises :class:`SweepError` after all jobs settle if any failed.
        """
        raise NotImplementedError

    def close(self) -> None:
        """Release pool resources (idempotent)."""

    def __enter__(self) -> "Pool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # shared failure bookkeeping
    # ------------------------------------------------------------------
    def _warn_fallback(self, job: Job) -> None:
        obs.EXEC_FALLBACKS.inc()
        obs.record_event(
            "fallback", cell=str(job.key), attempts=len(job.failures),
        )
        warn_once(
            "exec.fallback",
            f"repro.exec: cell {job.key} exhausted its "
            f"{self.policy.retries + 1} primary attempt(s); retrying "
            f"once with its fallback arguments",
            stacklevel=3, registry=self._warn_keys,
        )

    def _next_action(self, job: Job, message: str) -> Tuple[str, float]:
        """Record one failed attempt; decide ``(action, delay)``.

        ``action`` is ``"retry"`` (re-run, after ``delay`` seconds),
        ``"fallback"`` (ditto, with the fallback args installed) or
        ``"fail"`` (budget exhausted).
        """
        job.failures.append(message)
        if len(job.failures) <= self.policy.retries:
            job.attempt += 1
            obs.EXEC_RETRIES.inc()
            obs.record_event(
                "retry", cell=str(job.key), attempt=job.attempt,
                error=message,
            )
            return "retry", backoff_delay(self.policy, job.key, job.attempt)
        if job.fallback_args is not None and not job.used_fallback:
            job.used_fallback = True
            job.args = job.fallback_args
            job.attempt += 1
            self._warn_fallback(job)
            return "fallback", backoff_delay(self.policy, job.key,
                                             job.attempt)
        obs.EXEC_JOBS.inc(status="failed")
        obs.record_event(
            "job_failed", cell=str(job.key), attempts=len(job.failures),
            error=message,
        )
        return "fail", 0.0

    def _run_job_inline(
        self,
        fn: Callable,
        job: Job,
        completed: Optional[Callable[[Job, Any], None]],
        results: Dict[Any, Any],
        failures: Dict[Any, List[str]],
    ) -> None:
        """The serial attempt loop (also the forked pool's degraded
        mode): run one job to settlement in the calling process."""
        while True:
            self.jobs_dispatched += 1
            try:
                with _attempt_deadline(self.policy.timeout):
                    faults.before_task(job.key, job.attempt)
                    result = fn(*job.args)
            except Exception as exc:
                message = (f"attempt {job.attempt}: "
                           f"{type(exc).__name__}: {exc}")
                action, delay = self._next_action(job, message)
                if action == "fail":
                    failures[job.key] = job.failures
                    return
                if delay > 0:
                    time.sleep(delay)
                continue
            obs.EXEC_JOBS.inc(status="ok")
            self.jobs_completed += 1
            results[job.key] = result
            if completed is not None:
                completed(job, result)
            return


class _AttemptTimeout(Exception):
    """Raised inside a serial attempt when its SIGALRM deadline fires."""


def _warn_deadline_thread() -> None:
    # Once per process (the global warn-once registry): every further
    # attempt on any thread silently runs deadline-free.
    warn_once(
        "exec.deadline-thread",
        "repro.exec: serial attempt deadlines use SIGALRM, which only "
        "works on the main thread; attempts driven from other threads "
        "run without a deadline (use ForkServerPool where hard "
        "deadlines matter)",
        stacklevel=4,
    )


class _attempt_deadline:
    """Best-effort serial attempt timeout via ``SIGALRM``.

    Only engages on the main thread of a platform with ``SIGALRM`` —
    ``signal.signal`` raises ``ValueError`` anywhere else, and a
    scheduler thread (the ``repro.serve`` daemon drives serial pools
    from worker threads) must degrade to no-deadline with a single
    warning, not crash the attempt.  Nests correctly under an outer
    timer — e.g. a test harness's per-test alarm — by re-arming the
    outer timer's remaining time on exit.
    """

    def __init__(self, timeout: Optional[float]) -> None:
        self._timeout = timeout
        self._armed = False
        self._prev_handler: Any = None
        self._prev_delay = 0.0
        self._started = 0.0

    def __enter__(self) -> "_attempt_deadline":
        if self._timeout is None or not hasattr(signal, "SIGALRM"):
            return self
        if threading.current_thread() is not threading.main_thread():
            _warn_deadline_thread()
            return self

        def _on_alarm(signum: int, frame: Any) -> None:
            raise _AttemptTimeout(
                f"attempt exceeded its {self._timeout}s deadline"
            )

        try:
            self._prev_handler = signal.signal(signal.SIGALRM, _on_alarm)
        except ValueError:
            # Belt and braces: an embedding where the main-thread test
            # above passes but handler installation is still refused.
            _warn_deadline_thread()
            return self
        self._started = time.monotonic()
        self._prev_delay, _ = signal.setitimer(
            signal.ITIMER_REAL, self._timeout
        )
        self._armed = True
        return self

    def __exit__(self, *exc_info: object) -> None:
        if not self._armed:
            return
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, self._prev_handler)
        if self._prev_delay:
            remaining = self._prev_delay - (time.monotonic() - self._started)
            signal.setitimer(signal.ITIMER_REAL, max(remaining, 0.001))


class SerialPool(Pool):
    """In-process execution with the full retry/fallback policy.

    The ``timeout`` is enforced with ``SIGALRM`` where available (see
    :class:`_attempt_deadline`); on other platforms or threads a hung
    attempt cannot be preempted — use :class:`ForkServerPool` when hard
    deadlines matter.
    """

    def run(
        self,
        fn: Callable,
        jobs: Sequence[Job],
        completed: Optional[Callable[[Job, Any], None]] = None,
    ) -> Dict[Any, Any]:
        results: Dict[Any, Any] = {}
        failures: Dict[Any, List[str]] = {}
        for job in jobs:
            self._run_job_inline(fn, job, completed, results, failures)
        if failures:
            raise SweepError(failures, completed=len(results))
        return results


# ----------------------------------------------------------------------
# forked worker pool
# ----------------------------------------------------------------------
def _pool_worker_main(conn, initializer, initargs) -> None:
    """Worker loop: receive ``(key, fn, args, attempt)``, send back
    ``("ok", key, result)`` or ``("err", key, summary, traceback)``."""
    if initializer is not None:
        initializer(*initargs)
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return  # parent went away
        if message is None:
            return
        key, fn, args, attempt = message
        try:
            faults.before_task(key, attempt)
            result = fn(*args)
        except BaseException as exc:
            try:
                conn.send((
                    "err", key,
                    f"attempt {attempt}: {type(exc).__name__}: {exc}",
                    traceback.format_exc(),
                ))
            except Exception:  # pragma: no cover - reporting best-effort
                pass
            if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                return
            continue
        try:
            conn.send(("ok", key, result))
        except Exception as exc:
            # The result itself would not pickle/transmit: surface it
            # as a job failure, not a dead worker.
            try:
                conn.send((
                    "err", key,
                    f"attempt {attempt}: result not transmittable: "
                    f"{type(exc).__name__}: {exc}",
                    traceback.format_exc(),
                ))
            except Exception:  # pragma: no cover
                return


class _Worker:
    __slots__ = ("proc", "conn", "job", "deadline", "slot", "dispatched",
                 "completed")

    def __init__(self, proc, conn, slot: int = 0) -> None:
        self.proc = proc
        self.conn = conn
        self.job: Optional[Job] = None
        self.deadline: Optional[float] = None
        #: Stable slot id: a worker rebuilt after a crash inherits the
        #: slot of the worker it replaces (spawn counter modulo
        #: max_workers), so per-slot metrics stay bounded.
        self.slot = slot
        self.dispatched = 0
        self.completed = 0


class ForkServerPool(Pool):
    """Crash-isolating process pool with per-job dispatch visibility.

    ``initializer(*initargs)`` runs once in every worker (including
    rebuilt ones) — ``run_matrix`` uses it to attach the artifact store.
    Start workers *after* priming any fork-inherited caches; rebuilt
    workers fork from the same parent image, so they inherit the same
    pre-linked state the original workers did.
    """

    def __init__(
        self,
        max_workers: int,
        initializer: Optional[Callable] = None,
        initargs: Tuple = (),
        policy: Optional[FaultPolicy] = None,
        context: Optional[Any] = None,
    ) -> None:
        super().__init__(policy)
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.max_workers = max_workers
        self._initializer = initializer
        self._initargs = initargs
        self._ctx = context or multiprocessing.get_context()
        self._workers: List[_Worker] = []
        self._idle: List[_Worker] = []
        self._pending: deque = deque()
        self._closed = False
        #: Serializes close/terminate: the serve daemon's watchdog and
        #: its executor can both tear a pool down, and double-joining /
        #: double-closing pipes from two threads must be a no-op, not a
        #: crash.
        self._shutdown_lock = threading.Lock()
        #: Worker crashes absorbed so far (not timeouts — a deliberate
        #: deadline kill must not push a healthy pool toward serial
        #: degradation, where hangs could no longer be preempted).
        self.rebuilds = 0
        self.timeouts = 0
        self.degraded = False
        self._spawned = 0

    # -------------------------------------------------- worker lifecycle
    def _spawn(self) -> _Worker:
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_pool_worker_main,
            args=(child_conn, self._initializer, self._initargs),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        worker = _Worker(proc, parent_conn,
                         slot=self._spawned % self.max_workers)
        self._spawned += 1
        self._workers.append(worker)
        self._idle.append(worker)
        return worker

    def _discard(self, worker: _Worker, kill: bool = False) -> None:
        """Remove a worker, optionally SIGKILLing it first."""
        if kill and worker.proc.is_alive():
            try:
                worker.proc.kill()
            except (OSError, ValueError):  # pragma: no cover
                pass
        worker.proc.join(timeout=5.0)
        try:
            worker.conn.close()
        except OSError:  # pragma: no cover
            pass
        if worker in self._workers:
            self._workers.remove(worker)
        if worker in self._idle:
            self._idle.remove(worker)

    def _take_workers(self) -> List[_Worker]:
        """Atomically claim every live worker for teardown.

        Exactly one teardown path (close, terminate, or a concurrent
        duplicate of either) receives each worker, so sentinels, joins
        and pipe closes happen once no matter how many paths fire —
        ``close()`` after ``terminate()``, double ``close()``, or a
        watchdog thread racing the run loop's ``__exit__``.
        """
        with self._shutdown_lock:
            self._closed = True
            workers = list(self._workers)
            self._workers.clear()
            self._idle.clear()
        return workers

    def close(self) -> None:
        """Graceful shutdown: sentinel the workers, then reap them.

        Idempotent, and safe after :meth:`terminate` or concurrently
        with it (whichever path claims a worker tears it down).
        """
        workers = self._take_workers()
        for worker in workers:
            try:
                worker.conn.send(None)
            except (OSError, ValueError):
                pass
        for worker in workers:
            worker.proc.join(timeout=2.0)
            if worker.proc.is_alive():
                worker.proc.kill()
                worker.proc.join(timeout=5.0)
            try:
                worker.conn.close()
            except OSError:  # pragma: no cover
                pass

    def terminate(self) -> None:
        """Hard shutdown (exception paths): kill everything now.

        Idempotent, and safe after or concurrently with :meth:`close`.
        """
        for worker in self._take_workers():
            if worker.proc.is_alive():
                worker.proc.kill()
            worker.proc.join(timeout=5.0)
            try:
                worker.conn.close()
            except OSError:  # pragma: no cover
                pass

    def __exit__(self, exc_type, *rest: object) -> None:
        if exc_type is None:
            self.close()
        else:
            self.terminate()

    @property
    def closed(self) -> bool:
        """Whether the pool has been shut down (no further ``run``)."""
        return self._closed

    @property
    def alive_workers(self) -> int:
        """Resident worker processes currently alive (health surface)."""
        return sum(1 for w in self._workers if w.proc.is_alive())

    def worker_stats(self) -> Dict[str, Any]:
        """Pool totals plus one entry per resident worker.

        Pool totals survive worker rebuilds and degradation (they live
        on the pool); the per-worker list reflects only current
        residents, keyed by their stable slot id.
        """
        stats = super().worker_stats()
        stats["workers"] = [
            {
                "slot": w.slot,
                "alive": w.proc.is_alive(),
                "busy": w.job is not None,
                "dispatched": w.dispatched,
                "completed": w.completed,
            }
            for w in sorted(self._workers, key=lambda w: w.slot)
        ]
        return stats

    # -------------------------------------------------- run loop
    def run(
        self,
        fn: Callable,
        jobs: Sequence[Job],
        completed: Optional[Callable[[Job, Any], None]] = None,
    ) -> Dict[Any, Any]:
        if self._closed:
            raise RuntimeError("pool is closed")
        jobs = list(jobs)
        total = len(jobs)
        results: Dict[Any, Any] = {}
        failures: Dict[Any, List[str]] = {}
        pending: deque = deque(jobs)
        #: Exposed to _degrade, which requeues in-flight jobs here.
        self._pending = pending
        delayed: List[Tuple[float, int, Job]] = []
        seq = 0  # heap tiebreaker

        def schedule_failure(job: Job, message: str) -> None:
            nonlocal seq
            action, delay = self._next_action(job, message)
            if action == "fail":
                failures[job.key] = job.failures
                return
            if delay > 0:
                seq += 1
                heapq.heappush(delayed, (time.monotonic() + delay, seq, job))
            else:
                pending.append(job)

        try:
            while len(results) + len(failures) < total:
                now = time.monotonic()
                while delayed and delayed[0][0] <= now:
                    pending.append(heapq.heappop(delayed)[2])

                if self.degraded:
                    if pending:
                        self._run_job_inline(fn, pending.popleft(),
                                             completed, results, failures)
                    elif delayed:
                        time.sleep(max(0.0, delayed[0][0] -
                                       time.monotonic()))
                    continue

                while pending and not self.degraded and \
                        (self._idle or
                         len(self._workers) < self.max_workers):
                    if not self._idle:
                        self._spawn()
                    worker = self._idle.pop()
                    if not self._dispatch(worker, fn, pending):
                        continue

                busy = [w for w in self._workers if w.job is not None]
                if not busy:
                    if delayed:
                        time.sleep(max(0.0, delayed[0][0] -
                                       time.monotonic()))
                    # pending non-empty with no busy workers can only
                    # mean every spawn/dispatch just failed; loop and
                    # try again (degradation caps how often).
                    continue

                self._poll(busy, delayed, schedule_failure, completed,
                           results)
        except BaseException:
            self.terminate()
            raise

        if failures:
            raise SweepError(failures, completed=len(results))
        return results

    def _dispatch(self, worker: _Worker, fn: Callable,
                  pending: deque) -> bool:
        """Send the next pending job to ``worker``; False if it died."""
        job = pending.popleft()
        try:
            worker.conn.send((job.key, fn, job.args, job.attempt))
        except (OSError, ValueError):
            # The worker died while idle: the job was never in flight,
            # so it goes straight back; the dead worker still counts as
            # a crash for the degradation ladder.
            pending.appendleft(job)
            self._on_crash(worker, None, lambda *_: None)
            return False
        worker.job = job
        worker.dispatched += 1
        self.jobs_dispatched += 1
        obs.EXEC_WORKER_DISPATCHED.inc(slot=str(worker.slot))
        if self.policy.timeout is not None:
            worker.deadline = time.monotonic() + self.policy.timeout
        return True

    def _poll(
        self,
        busy: List[_Worker],
        delayed: List[Tuple[float, int, Job]],
        schedule_failure: Callable[[Job, str], None],
        completed: Optional[Callable[[Job, Any], None]],
        results: Dict[Any, Any],
    ) -> None:
        """Wait for one event: a result, a crash, a deadline, a retry
        becoming due."""
        now = time.monotonic()
        timeout: Optional[float] = None
        deadlines = [w.deadline for w in busy if w.deadline is not None]
        if deadlines:
            timeout = max(0.0, min(deadlines) - now)
        if delayed:
            due = max(0.0, delayed[0][0] - now)
            timeout = due if timeout is None else min(timeout, due)

        handles: List[Any] = []
        by_handle: Dict[Any, _Worker] = {}
        for worker in busy:
            handles.append(worker.conn)
            by_handle[worker.conn] = worker
            handles.append(worker.proc.sentinel)
            by_handle[worker.proc.sentinel] = worker
        ready = set(_mp_wait(handles, timeout=timeout))

        for worker in busy:
            # job=None: settled earlier in this pass; removed from
            # _workers: torn down by a degradation triggered by an
            # earlier crash in this same pass (its job was requeued).
            if worker.job is None or worker not in self._workers:
                continue
            if worker.conn in ready or worker.conn.poll():
                try:
                    message = worker.conn.recv()
                except (EOFError, OSError):
                    self._on_crash(worker, worker.job, schedule_failure)
                    continue
                self._on_message(worker, message, schedule_failure,
                                 completed, results)
            elif worker.proc.sentinel in ready:
                self._on_crash(worker, worker.job, schedule_failure)

        # Deadlines last: a worker that produced its result above has
        # job=None and is exempt even if it was over the line.
        now = time.monotonic()
        for worker in busy:
            if (
                worker.job is not None
                and worker.deadline is not None
                and now >= worker.deadline
                and worker in self._workers
            ):
                self._on_timeout(worker, schedule_failure)

    def _on_message(
        self,
        worker: _Worker,
        message: Tuple,
        schedule_failure: Callable[[Job, str], None],
        completed: Optional[Callable[[Job, Any], None]],
        results: Dict[Any, Any],
    ) -> None:
        job = worker.job
        worker.job = None
        worker.deadline = None
        self._idle.append(worker)
        status, key = message[0], message[1]
        if job is None or key != job.key:  # pragma: no cover - protocol bug
            raise RuntimeError(
                f"pool protocol violation: got {status!r} for {key!r} "
                f"while expecting {getattr(job, 'key', None)!r}"
            )
        if status == "ok":
            obs.EXEC_JOBS.inc(status="ok")
            worker.completed += 1
            self.jobs_completed += 1
            obs.EXEC_WORKER_COMPLETED.inc(slot=str(worker.slot))
            results[key] = message[2]
            if completed is not None:
                completed(job, message[2])
        else:
            schedule_failure(job, message[2])

    def _on_crash(
        self,
        worker: _Worker,
        job: Optional[Job],
        schedule_failure: Callable[[Job, str], None],
    ) -> None:
        self._discard(worker)  # joins, so the exit code is available
        exitcode = worker.proc.exitcode
        self.rebuilds += 1
        obs.EXEC_REBUILDS.inc()
        obs.record_event(
            "worker_crash", exitcode=exitcode,
            cell=str(job.key) if job is not None else None,
        )
        if job is not None:
            worker_desc = (
                f"worker crashed (exit code {exitcode})"
                if exitcode is not None else "worker crashed"
            )
            schedule_failure(job, f"attempt {job.attempt}: {worker_desc}")
        if self.rebuilds > self.policy.max_rebuilds:
            self._degrade()
        # No eager respawn otherwise: the dispatch loop spawns on
        # demand while jobs remain, so a crash at the tail of a sweep
        # does not fork a worker with nothing to do.

    def _on_timeout(self, worker: _Worker,
                    schedule_failure: Callable[[Job, str], None]) -> None:
        job = worker.job
        self.timeouts += 1
        self._discard(worker, kill=True)
        assert job is not None
        obs.EXEC_TIMEOUTS.inc()
        obs.record_event(
            "timeout", cell=str(job.key), timeout=self.policy.timeout,
        )
        schedule_failure(
            job,
            f"attempt {job.attempt}: timed out after "
            f"{self.policy.timeout}s (worker killed)",
        )

    def _degrade(self) -> None:
        """Parallel → serial: the degradation ladder's last rung."""
        self.degraded = True
        obs.EXEC_DEGRADATIONS.inc()
        obs.record_event("degraded", rebuilds=self.rebuilds)
        warn_once(
            "exec.degraded",
            f"repro.exec: {self.rebuilds} worker crashes exceeded "
            f"max_rebuilds={self.policy.max_rebuilds}; finishing the "
            f"sweep serially in the parent process",
            stacklevel=4, registry=self._warn_keys,
        )
        # In-flight jobs go back to the queue without consuming retry
        # budget — their workers are being torn down by us, not failing.
        requeued: List[Job] = []
        for worker in self._workers:
            if worker.job is not None:
                requeued.append(worker.job)
                worker.job = None
        self.terminate()
        self._closed = False  # the run loop continues, serially
        for job in requeued:
            self._pending.appendleft(job)
