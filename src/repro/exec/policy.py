"""Per-cell fault policy for the job pools.

A :class:`FaultPolicy` describes how a pool treats one failing job:
how long an attempt may run, how many times it is retried, how the
retry delay grows, and when the pool itself gives up on parallel
execution.  The policy is deliberately *deterministic*: the backoff
jitter is derived from the job key and attempt number, not from a
clock or a global RNG, so a replayed sweep schedules its retries
identically — the same property that makes the simulation results
themselves bit-identical across runs.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class FaultPolicy:
    """How a pool responds to a failing or unresponsive job.

    ``timeout``
        Wall-clock seconds one *attempt* may run.  In the forked pool
        an over-deadline worker is SIGKILLed and the cell re-dispatched
        (counted against its retry budget).  The serial pool enforces
        it with ``SIGALRM`` when running on the main thread of a
        platform that has it, and cannot preempt otherwise.  ``None``
        disables the deadline.
    ``retries``
        How many times a failed attempt is re-tried, so a cell runs at
        most ``retries + 1`` times (plus one optional fallback attempt,
        see :class:`~repro.exec.pool.Job`).  Crashes, timeouts and
        exceptions all consume the same budget.
    ``backoff`` / ``backoff_factor`` / ``backoff_max`` / ``jitter``
        Retry ``k`` (1-based) sleeps ``backoff * factor**(k-1)``
        seconds, stretched by up to ``jitter`` (a fraction) of
        deterministic per-(key, attempt) jitter and capped at
        ``backoff_max``.  ``backoff=0`` disables the delay entirely.
    ``max_rebuilds``
        How many worker crashes the forked pool absorbs by rebuilding
        the lost worker.  One more and the pool degrades to running the
        remaining cells serially in the parent (with a single warning)
        — a host that keeps OOM-killing workers gets a slow sweep, not
        a dead one.
    """

    timeout: Optional[float] = None
    retries: int = 2
    backoff: float = 0.25
    backoff_factor: float = 2.0
    backoff_max: float = 8.0
    jitter: float = 0.25
    max_rebuilds: int = 3


def backoff_delay(policy: FaultPolicy, key: object, attempt: int) -> float:
    """Seconds to wait before retry ``attempt`` (1-based) of ``key``.

    Exponential in the attempt number with deterministic jitter hashed
    from ``(key, attempt)`` — two runs of the same sweep back off
    identically, and two cells failing together do not retry in
    lockstep.
    """
    if policy.backoff <= 0 or attempt <= 0:
        return 0.0
    base = policy.backoff * (policy.backoff_factor ** (attempt - 1))
    digest = hashlib.sha256(f"{key!r}|{attempt}".encode()).digest()
    fraction = int.from_bytes(digest[:4], "big") / 0xFFFFFFFF
    return min(policy.backoff_max, base * (1.0 + policy.jitter * fraction))


class SweepError(RuntimeError):
    """One or more cells of a sweep failed after exhausting the policy.

    Raised only after every job has settled, so everything that *did*
    complete has already been delivered through the pool's ``completed``
    callback (and, in ``run_matrix``, persisted to the artifact store
    and journal) — a re-run resumes from there instead of starting
    over.

    ``failures`` maps each failed job key to the list of per-attempt
    error summaries; ``completed`` counts the jobs that succeeded.
    """

    def __init__(self, failures: dict, completed: int = 0) -> None:
        self.failures = dict(failures)
        self.completed = completed
        names = sorted(str(key) for key in self.failures)
        shown = ", ".join(names[:8])
        if len(names) > 8:
            shown += f", ... ({len(names) - 8} more)"
        last = ""
        if names:
            first_key = next(
                key for key in self.failures if str(key) == names[0]
            )
            messages = self.failures[first_key]
            if messages:
                last = f"; first failure: {messages[-1]}"
        super().__init__(
            f"{len(names)} cell(s) failed after exhausting the fault "
            f"policy ({completed} completed): {shown}{last}"
        )
