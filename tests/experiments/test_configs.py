"""Tests asserting the Table 2 configuration is faithfully encoded."""

import pytest

from repro.branch.perceptron import PerceptronConfig
from repro.branch.twobcgskew import GskewConfig
from repro.common.params import default_machine
from repro.experiments.configs import (
    ARCH_LABELS,
    ARCHITECTURES,
    build_engine,
    build_processor,
)
from repro.fetch.stream_predictor import StreamPredictorConfig
from repro.fetch.trace_predictor import TracePredictorConfig
from repro.memory.hierarchy import MemoryHierarchy


class TestTable2PredictorBudgets:
    def test_ev8_gskew(self):
        cfg = GskewConfig()
        assert cfg.bank_entries == 32 * 1024  # 4 x 32K-entry tables
        assert cfg.history_bits == 15

    def test_ftb_perceptron(self):
        cfg = PerceptronConfig()
        assert cfg.num_perceptrons == 512
        assert cfg.global_history_bits == 40
        assert cfg.local_table_entries == 4096
        assert cfg.local_history_bits == 14

    def test_stream_predictor(self):
        cfg = StreamPredictorConfig()
        assert (cfg.first_entries, cfg.first_assoc) == (1024, 4)
        assert (cfg.second_entries, cfg.second_assoc) == (6 * 1024, 3)
        d = cfg.dolc
        assert (d.depth, d.older_bits, d.last_bits, d.current_bits) == (
            12, 2, 4, 10)

    def test_trace_predictor(self):
        cfg = TracePredictorConfig()
        assert (cfg.first_entries, cfg.first_assoc) == (1024, 4)
        assert (cfg.second_entries, cfg.second_assoc) == (4096, 4)
        d = cfg.dolc
        assert (d.depth, d.older_bits, d.last_bits, d.current_bits) == (
            9, 4, 7, 9)


class TestEngineFactories:
    @pytest.mark.parametrize("arch", ARCHITECTURES)
    def test_builds_every_architecture(self, arch, tiny_program, machine8,
                                       mem8):
        engine = build_engine(arch, tiny_program, machine8, mem8)
        assert engine.name == arch

    def test_rejects_unknown(self, tiny_program, machine8, mem8):
        with pytest.raises(ValueError):
            build_engine("btac", tiny_program, machine8, mem8)

    def test_labels_cover_architectures(self):
        assert set(ARCH_LABELS) == set(ARCHITECTURES)

    def test_ev8_defaults(self, tiny_program, machine8, mem8):
        engine = build_engine("ev8", tiny_program, machine8, mem8)
        assert engine.btb.num_sets * engine.btb.assoc == 2048
        assert engine.ras.depth == 8

    def test_trace_defaults(self, tiny_program, machine8, mem8):
        engine = build_engine("trace", tiny_program, machine8, mem8)
        # 32KB of instruction storage / (16 instr x 4B) = 512 traces.
        assert engine.trace_cache.num_sets * engine.trace_cache.assoc == 512
        assert engine.btb.num_sets * engine.btb.assoc == 1024
        assert engine.selective_storage is True
        assert engine.partial_matching is False


class TestBuildProcessor:
    def test_wires_width(self, tiny_program):
        processor = build_processor("stream", tiny_program, width=4)
        assert processor.machine.width == 4

    def test_custom_machine(self, tiny_program):
        machine = default_machine(2)
        processor = build_processor("ev8", tiny_program, width=8,
                                    machine=machine)
        assert processor.machine.width == 2  # explicit machine wins
