"""Smoke tests for the CLI and the ablation studies."""

import pytest

from repro.experiments import ablations
from repro.experiments.cli import main


class TestAblations:
    def test_line_width_sweep_renders(self):
        text = ablations.line_width_sweep(
            "gzip", line_bytes_options=(32, 128), instructions=8000,
            scale=0.3,
        )
        assert "line bytes" in text
        assert "128" in text

    def test_ftq_depth_sweep_renders(self):
        text = ablations.ftq_depth_sweep(
            "gzip", depths=(1, 4), instructions=8000, scale=0.3,
        )
        assert "FTQ entries" in text

    def test_trace_storage_ablation_renders(self):
        text = ablations.trace_storage_ablation(
            "gzip", instructions=8000, scale=0.3,
        )
        assert "selective" in text

    def test_cascade_ablation_renders(self):
        text = ablations.cascade_ablation(
            "gzip", instructions=8000, scale=0.3,
        )
        assert "cascade" in text


class TestCli:
    def test_table1(self, capsys):
        rc = main(["table1", "--benchmarks", "gzip",
                   "--instructions", "8000", "--scale", "0.3", "--quiet"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Table 1" in out

    def test_fig9(self, capsys):
        rc = main(["fig9", "--benchmarks", "gzip",
                   "--instructions", "6000", "--scale", "0.3", "--quiet"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Figure 9" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
