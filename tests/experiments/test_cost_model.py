"""Tests for the cost/complexity accounting (Table 1's cost column)."""

import pytest

from repro.experiments.cost_model import (
    cost_comparison,
    cost_table_text,
    ev8_cost,
    ftb_cost,
    stream_cost,
    trace_cost,
)


class TestStructuralClaims:
    """§3.1: the architectural simplicity argument."""

    def test_stream_single_instruction_path(self):
        assert stream_cost().instruction_paths == 1

    def test_stream_single_predictor(self):
        assert stream_cost().predictors == 1

    def test_stream_no_special_store(self):
        assert stream_cost().special_stores == 0

    def test_trace_cache_two_paths_two_predictors(self):
        report = trace_cost()
        assert report.instruction_paths == 2
        assert report.predictors == 2
        assert report.special_stores == 1

    def test_trace_cache_most_expensive(self):
        reports = {r.name: r.total_bits for r in cost_comparison()}
        assert reports["trace"] == max(reports.values())

    def test_stream_cost_of_same_order_as_btb_engines(self):
        """Table 1: streams are 'low cost' like basic-block engines."""
        reports = {r.name: r.total_bits for r in cost_comparison()}
        assert reports["stream"] < reports["trace"]
        assert reports["stream"] < 2.0 * max(reports["ev8"], reports["ftb"])


class TestBudgets:
    def test_predictor_budgets_near_45kb(self):
        """§4.1: 'a total approximate budget of 45KB' for prediction
        state (excluding the trace cache's instruction storage)."""
        for report in (ev8_cost(), ftb_cost(), stream_cost()):
            assert 15 < report.total_kib < 90, report.name

    def test_trace_storage_dominates_trace_cost(self):
        report = trace_cost()
        assert report.components["trace cache data"] == 512 * 16 * 32

    def test_component_bits_positive(self):
        for report in cost_comparison():
            for name, bits in report.components.items():
                assert bits > 0, f"{report.name}/{name}"


class TestRendering:
    def test_table_text(self):
        text = cost_table_text()
        assert "stream" in text
        assert "state (KiB)" in text
        assert "trace" in text
