"""Tests for the experiment harness: runner, figures, tables, reporting."""

import pytest

from repro.experiments.figures import figure8_data, figure8_text, figure9_text
from repro.experiments.reporting import (
    ascii_bars,
    format_table,
    relative_speedups,
)
from repro.experiments.runner import ProgramCache, RunSpec, run_matrix
from repro.experiments.tables import fetch_unit_sizes, table3_text

BENCHES = ["gzip"]


@pytest.fixture(scope="module")
def small_matrix():
    return run_matrix(
        BENCHES, widths=(8,), instructions=15000, warmup=5000, scale=0.3,
    )


class TestRunner:
    def test_matrix_covers_cross_product(self, small_matrix):
        assert len(small_matrix.results) == 1 * 1 * 4 * 2

    def test_get(self, small_matrix):
        r = small_matrix.get("stream", "gzip", 8, True)
        assert r.engine == "stream"
        assert r.optimized is True

    def test_select_filters(self, small_matrix):
        only_stream = small_matrix.select(arch="stream")
        assert len(only_stream) == 2
        assert all(r.engine == "stream" for r in only_stream)

    def test_program_cache_reuses(self):
        cache = ProgramCache()
        a = cache.get("gzip", False, 0.3)
        b = cache.get("gzip", False, 0.3)
        assert a is b

    def test_runspec_hashable(self):
        assert RunSpec("ev8", "gzip", 8, True) == RunSpec("ev8", "gzip", 8, True)


class TestFigures:
    def test_figure8_data_structure(self, small_matrix):
        data = figure8_data(small_matrix, BENCHES, widths=(8,))
        assert set(data) == {8}
        assert set(data[8]) == {"ev8", "ftb", "stream", "trace"}
        for per_layout in data[8].values():
            assert set(per_layout) == {False, True}
            assert all(v > 0 for v in per_layout.values())

    def test_figure8_text_renders(self, small_matrix):
        text = figure8_text(small_matrix, BENCHES, widths=(8,))
        assert "Figure 8" in text
        assert "Streams" in text

    def test_figure9_text_renders(self, small_matrix):
        text = figure9_text(small_matrix, BENCHES)
        assert "gzip" in text
        assert "hmean" in text


class TestTables:
    def test_table3_text(self, small_matrix):
        text = table3_text(small_matrix, BENCHES)
        assert "mispred" in text
        assert "Tcache" in text

    def test_fetch_unit_sizes_ordering(self):
        sizes = fetch_unit_sizes("gzip", optimized=True,
                                 n_instructions=20000, scale=0.3)
        # Table 1 ordering: block < trace <= stream; fetch blocks are
        # bounded by the FTB length cap.
        assert sizes["basic_block"] < sizes["trace"]
        assert sizes["basic_block"] < sizes["stream"]
        assert sizes["stream"] > sizes["fetch_block"] * 0.9

    def test_fetch_unit_sizes_layout_effect(self):
        base = fetch_unit_sizes("gzip", optimized=False,
                                n_instructions=20000, scale=0.3)
        opt = fetch_unit_sizes("gzip", optimized=True,
                               n_instructions=20000, scale=0.3)
        assert opt["stream"] > base["stream"]


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], [10, 0.125]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_ascii_bars(self):
        out = ascii_bars({"x": 1.0, "y": 2.0}, width=10)
        assert "##########" in out
        assert "#####" in out

    def test_ascii_bars_empty(self):
        assert ascii_bars({}) == "(no data)"

    def test_relative_speedups(self):
        sp = relative_speedups({"a": 2.0, "b": 3.0}, base="a")
        assert sp["a"] == pytest.approx(1.0)
        assert sp["b"] == pytest.approx(1.5)

    def test_relative_speedups_missing_base(self):
        with pytest.raises(KeyError):
            relative_speedups({"a": 1.0}, base="zz")
