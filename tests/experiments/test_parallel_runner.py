"""Serial vs parallel ``run_matrix`` equivalence.

The parallel path shards individual (arch, benchmark, width, layout)
cells across worker processes with fork-server image amortization;
every simulation is deterministic given its RunSpec, so the two paths
must produce *bit-identical* results — same counters, same engine
stats, same memory stats — not merely statistically similar.
"""

import dataclasses

from helpers import result_digest

import pytest

from repro.experiments.runner import RunSpec, run_matrix

BENCHES = ("gzip", "twolf")
KWARGS = dict(widths=(8,), instructions=12_000, warmup=4_000, scale=0.3)


@pytest.fixture(scope="module")
def serial_matrix():
    return run_matrix(BENCHES, **KWARGS)


@pytest.fixture(scope="module")
def parallel_matrix():
    return run_matrix(BENCHES, **KWARGS, jobs=2)


class TestParallelEquivalence:
    def test_same_specs(self, serial_matrix, parallel_matrix):
        assert set(serial_matrix.results) == set(parallel_matrix.results)
        assert len(serial_matrix.results) == 2 * 2 * 4  # bench x layout x arch

    def test_results_bit_identical(self, serial_matrix, parallel_matrix):
        for spec, serial in serial_matrix.results.items():
            parallel = parallel_matrix.results[spec]
            assert result_digest(serial) == result_digest(parallel), (
                f"serial/parallel divergence at {spec}"
            )

    def test_every_counter_field(self, serial_matrix, parallel_matrix):
        """Field-by-field check so a divergence names the counter."""
        spec = RunSpec("stream", "gzip", 8, True)
        serial = serial_matrix.results[spec]
        parallel = parallel_matrix.results[spec]
        for field in dataclasses.fields(serial):
            if not field.compare:
                continue  # extras: run diagnostics, warmth-dependent
            assert getattr(serial, field.name) == getattr(parallel, field.name), (
                f"field {field.name} differs between serial and parallel"
            )

    def test_result_ordering_matches(self, serial_matrix, parallel_matrix):
        """The parallel path inserts results in the serial order."""
        assert list(serial_matrix.results) == list(parallel_matrix.results)

    def test_progress_called_per_result(self):
        seen = []
        run_matrix(("gzip",), widths=(8,), instructions=5_000,
                   warmup=1_000, scale=0.3, jobs=2,
                   progress=lambda r: seen.append((r.benchmark, r.engine,
                                                   r.optimized)))
        assert len(seen) == 8  # 1 bench x 2 layouts x 4 archs
        assert len(set(seen)) == 8


class TestCellLevelSharding:
    """Cell-granularity work units: uneven matrices the old
    (benchmark, layout) group sharding could not balance."""

    UNEVEN = dict(benchmarks=("gzip",), widths=(2, 4, 8), layouts=(True,),
                  instructions=6_000, warmup=2_000, scale=0.3)

    def test_single_group_many_cells_bit_identical(self):
        """1 benchmark x 1 layout is a single group but 12 cells; the
        cell-sharded pool must still match the serial path exactly."""
        serial = run_matrix(**self.UNEVEN)
        parallel = run_matrix(**self.UNEVEN, jobs=3)
        assert list(serial.results) == list(parallel.results)
        assert len(serial.results) == 3 * 4  # widths x archs
        for spec, expect in serial.results.items():
            got = parallel.results[spec]
            assert result_digest(expect) == result_digest(got), (
                f"serial/parallel divergence at {spec}"
            )

    def test_more_jobs_than_cells(self):
        serial = run_matrix(("gzip",), widths=(8,), archs=("ev8",),
                            layouts=(True,), instructions=4_000,
                            warmup=1_000, scale=0.3)
        parallel = run_matrix(("gzip",), widths=(8,), archs=("ev8",),
                              layouts=(True,), instructions=4_000,
                              warmup=1_000, scale=0.3, jobs=16)
        spec = RunSpec("ev8", "gzip", 8, True)
        assert result_digest(serial.results[spec]) == \
            result_digest(parallel.results[spec])


class TestSelectIndexes:
    """RunMatrixResult.select is served from per-axis indexes."""

    @pytest.fixture(scope="class")
    def matrix(self):
        return run_matrix(("gzip",), widths=(2, 8), instructions=4_000,
                          warmup=1_000, scale=0.3)

    def test_select_matches_brute_force(self, matrix):
        for kwargs in (
            dict(arch="stream"),
            dict(width=2),
            dict(optimized=True),
            dict(arch="ev8", width=8),
            dict(arch="trace", benchmark="gzip", width=2, optimized=False),
            dict(),
        ):
            expected = [
                r for spec, r in matrix.results.items()
                if all(getattr(spec, k) == v for k, v in kwargs.items())
            ]
            assert matrix.select(**kwargs) == expected

    def test_select_no_match(self, matrix):
        assert matrix.select(benchmark="nosuch") == []

    def test_select_after_direct_mutation(self, matrix):
        """Directly populated results still select correctly (the
        indexes rebuild lazily)."""
        from repro.experiments.runner import RunMatrixResult
        clone = RunMatrixResult(instructions=1, scale=1.0)
        for spec, r in matrix.results.items():
            clone.results[spec] = r  # bypasses add()
        assert clone.select(arch="ftb") == matrix.select(arch="ftb")
