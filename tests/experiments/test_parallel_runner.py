"""Serial vs parallel ``run_matrix`` equivalence.

The parallel path shards (benchmark, layout) groups across worker
processes; every simulation is deterministic given its RunSpec, so the
two paths must produce *bit-identical* results — same counters, same
engine stats, same memory stats — not merely statistically similar.
"""

import dataclasses

import pytest

from repro.experiments.runner import RunSpec, run_matrix

BENCHES = ("gzip", "twolf")
KWARGS = dict(widths=(8,), instructions=12_000, warmup=4_000, scale=0.3)


@pytest.fixture(scope="module")
def serial_matrix():
    return run_matrix(BENCHES, **KWARGS)


@pytest.fixture(scope="module")
def parallel_matrix():
    return run_matrix(BENCHES, **KWARGS, jobs=2)


class TestParallelEquivalence:
    def test_same_specs(self, serial_matrix, parallel_matrix):
        assert set(serial_matrix.results) == set(parallel_matrix.results)
        assert len(serial_matrix.results) == 2 * 2 * 4  # bench x layout x arch

    def test_results_bit_identical(self, serial_matrix, parallel_matrix):
        for spec, serial in serial_matrix.results.items():
            parallel = parallel_matrix.results[spec]
            assert dataclasses.asdict(serial) == dataclasses.asdict(parallel), (
                f"serial/parallel divergence at {spec}"
            )

    def test_every_counter_field(self, serial_matrix, parallel_matrix):
        """Field-by-field check so a divergence names the counter."""
        spec = RunSpec("stream", "gzip", 8, True)
        serial = serial_matrix.results[spec]
        parallel = parallel_matrix.results[spec]
        for field in dataclasses.fields(serial):
            assert getattr(serial, field.name) == getattr(parallel, field.name), (
                f"field {field.name} differs between serial and parallel"
            )

    def test_result_ordering_matches(self, serial_matrix, parallel_matrix):
        """The parallel path inserts results in the serial order."""
        assert list(serial_matrix.results) == list(parallel_matrix.results)

    def test_progress_called_per_result(self):
        seen = []
        run_matrix(("gzip",), widths=(8,), instructions=5_000,
                   warmup=1_000, scale=0.3, jobs=2,
                   progress=lambda r: seen.append((r.benchmark, r.engine,
                                                   r.optimized)))
        assert len(seen) == 8  # 1 bench x 2 layouts x 4 archs
        assert len(set(seen)) == 8
