"""Tests for repro.common.types."""

import pytest

from repro.common.types import (
    INSTRUCTION_BYTES,
    BranchKind,
    InstrClass,
    align_down,
    instructions_to_line_end,
)


class TestBranchKind:
    def test_none_is_not_control(self):
        assert not BranchKind.NONE.is_control

    @pytest.mark.parametrize(
        "kind", [BranchKind.COND, BranchKind.JUMP, BranchKind.CALL,
                 BranchKind.RET, BranchKind.IND]
    )
    def test_controls(self, kind):
        assert kind.is_control

    def test_unconditional_set(self):
        assert not BranchKind.COND.is_unconditional
        assert BranchKind.JUMP.is_unconditional
        assert BranchKind.CALL.is_unconditional
        assert BranchKind.RET.is_unconditional
        assert BranchKind.IND.is_unconditional

    def test_static_targets(self):
        assert BranchKind.COND.has_static_target
        assert BranchKind.JUMP.has_static_target
        assert BranchKind.CALL.has_static_target
        assert not BranchKind.RET.has_static_target
        assert not BranchKind.IND.has_static_target


class TestInstrClass:
    def test_latencies_positive(self):
        for cls in InstrClass:
            assert cls.base_latency >= 1

    def test_mul_slower_than_alu(self):
        assert InstrClass.MUL.base_latency > InstrClass.ALU.base_latency


class TestAddressHelpers:
    def test_align_down(self):
        assert align_down(0x1234, 64) == 0x1200
        assert align_down(0x1200, 64) == 0x1200

    def test_instructions_to_line_end_full_line(self):
        assert instructions_to_line_end(0x1000, 64) == 64 // INSTRUCTION_BYTES

    def test_instructions_to_line_end_last_slot(self):
        assert instructions_to_line_end(0x1000 + 60, 64) == 1

    @pytest.mark.parametrize("offset", range(0, 64, 4))
    def test_line_end_always_in_range(self, offset):
        n = instructions_to_line_end(0x2000 + offset, 64)
        assert 1 <= n <= 16
