"""Tests for repro.common.params (the Table 2 configurations)."""

import pytest

from repro.common.params import (
    CacheParams,
    CoreParams,
    default_machine,
    default_memory,
)


class TestCacheParams:
    def test_num_sets(self):
        p = CacheParams(size_bytes=64 * 1024, assoc=2, line_bytes=64)
        assert p.num_sets == 512

    def test_instructions_per_line(self):
        assert CacheParams(64 * 1024, 2, 128).instructions_per_line == 32

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            CacheParams(size_bytes=1000, assoc=3, line_bytes=64)

    def test_rejects_non_power_of_two_line(self):
        with pytest.raises(ValueError):
            CacheParams(size_bytes=64 * 1024, assoc=2, line_bytes=48)


class TestCoreParams:
    def test_rob_derived_from_width(self):
        assert CoreParams(width=8).rob_size == 128
        assert CoreParams(width=2).rob_size == 32

    def test_explicit_rob_respected(self):
        assert CoreParams(width=8, rob_size=64).rob_size == 64

    def test_rejects_odd_width(self):
        with pytest.raises(ValueError):
            CoreParams(width=3)


class TestTable2Defaults:
    """The common settings block of Table 2."""

    @pytest.mark.parametrize("width,line", [(2, 32), (4, 64), (8, 128)])
    def test_icache_line_scales_with_width(self, width, line):
        mem = default_memory(width)
        assert mem.il1.line_bytes == line

    def test_l1_sizes(self):
        mem = default_memory(8)
        assert mem.il1.size_bytes == 64 * 1024
        assert mem.il1.assoc == 2
        assert mem.dl1.size_bytes == 64 * 1024
        assert mem.dl1.assoc == 2
        assert mem.dl1.line_bytes == 64

    def test_l2(self):
        mem = default_memory(8)
        assert mem.l2.size_bytes == 1024 * 1024
        assert mem.l2.assoc == 4
        assert mem.l2_latency == 15
        assert mem.memory_latency == 100

    def test_machine_pipeline(self):
        machine = default_machine(4)
        assert machine.core.pipeline_depth == 16
        assert machine.core.ftq_entries == 4
        assert machine.width == 4
