"""Tests for repro.common.stats."""

import pytest
from hypothesis import given, strategies as st

from repro.common.stats import CounterBag, geometric_mean, harmonic_mean


class TestCounterBag:
    def test_add_and_get(self):
        bag = CounterBag()
        bag.add("x")
        bag.add("x", 4)
        assert bag["x"] == 5

    def test_missing_is_zero(self):
        assert CounterBag()["nothing"] == 0

    def test_rate(self):
        bag = CounterBag({"hits": 30, "accesses": 40})
        assert bag.rate("hits", "accesses") == pytest.approx(0.75)

    def test_rate_zero_denominator(self):
        assert CounterBag().rate("a", "b") == 0.0

    def test_merge(self):
        a = CounterBag({"x": 1})
        b = CounterBag({"x": 2, "y": 3})
        a.merge(b)
        assert a["x"] == 3
        assert a["y"] == 3

    def test_as_dict_is_copy(self):
        bag = CounterBag({"x": 1})
        d = bag.as_dict()
        d["x"] = 99
        assert bag["x"] == 1


class TestMeans:
    def test_harmonic_known_value(self):
        assert harmonic_mean([1.0, 2.0]) == pytest.approx(4.0 / 3.0)

    def test_harmonic_rejects_empty(self):
        with pytest.raises(ValueError):
            harmonic_mean([])

    def test_harmonic_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            harmonic_mean([1.0, 0.0])

    def test_geometric_known_value(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)

    @given(st.lists(st.floats(min_value=0.1, max_value=100), min_size=1,
                    max_size=20))
    def test_harmonic_leq_geometric(self, values):
        """HM <= GM for positive values (classic inequality)."""
        assert harmonic_mean(values) <= geometric_mean(values) * (1 + 1e-9)

    @given(st.lists(st.floats(min_value=0.1, max_value=100), min_size=1,
                    max_size=20))
    def test_harmonic_bounded_by_min_max(self, values):
        hm = harmonic_mean(values)
        assert min(values) - 1e-9 <= hm <= max(values) + 1e-9
