"""Tests for the DOLC path hashing."""

import pytest
from hypothesis import given, strategies as st

from repro.common.hashing import DolcHasher, DolcSpec, fold_xor

STREAM_SPEC = DolcSpec(depth=12, older_bits=2, last_bits=4, current_bits=10)
TRACE_SPEC = DolcSpec(depth=9, older_bits=4, last_bits=7, current_bits=9)

addrs = st.integers(min_value=0x1000, max_value=0x200000).map(lambda a: a & ~3)


class TestFoldXor:
    def test_small_value_unchanged(self):
        assert fold_xor(0x5, 8) == 0x5

    def test_folds_high_bits(self):
        assert fold_xor(0x100, 8) == 0x1

    def test_zero(self):
        assert fold_xor(0, 8) == 0

    def test_rejects_bad_width(self):
        with pytest.raises(ValueError):
            fold_xor(5, 0)

    def test_negative_input_terminates(self):
        """Regression: a negative value must not loop forever (Python's
        >> keeps negatives at -1)."""
        assert 0 <= fold_xor(-17, 11) < (1 << 11)

    @given(st.integers(min_value=0, max_value=2**64), st.integers(1, 24))
    def test_in_range(self, value, width):
        assert 0 <= fold_xor(value, width) < (1 << width)


class TestDolcSpec:
    def test_paper_specs_total_bits(self):
        assert STREAM_SPEC.total_bits == 11 * 2 + 4 + 10
        assert TRACE_SPEC.total_bits == 8 * 4 + 7 + 9

    def test_rejects_zero_depth(self):
        with pytest.raises(ValueError):
            DolcSpec(depth=0, older_bits=1, last_bits=1, current_bits=1)


class TestDolcHasher:
    def test_deterministic(self):
        h = DolcHasher(STREAM_SPEC, 11)
        hist = [0x1000, 0x2000, 0x3000]
        assert h.index(hist, 0x4000) == h.index(list(hist), 0x4000)

    def test_empty_history_ok(self):
        h = DolcHasher(STREAM_SPEC, 11)
        assert 0 <= h.index([], 0x4000) < (1 << 11)

    def test_history_changes_index_often(self):
        """Different paths to the same address should usually hash apart."""
        h = DolcHasher(STREAM_SPEC, 11)
        base = [0x1000 + 16 * i for i in range(11)]
        collisions = 0
        trials = 200
        for i in range(trials):
            other = list(base)
            other[-1] = 0x9000 + 16 * i
            if h.index(base, 0x4000) == h.index(other, 0x4000):
                collisions += 1
        assert collisions < trials * 0.2

    def test_repeated_address_counting(self):
        """Histories differing only in repeat count must hash apart —
        this is what lets the cascade count loop iterations."""
        h = DolcHasher(STREAM_SPEC, 11)
        seen = {
            h.index([0x500] + [0x100] * k, 0x100) for k in range(1, 8)
        }
        assert len(seen) > 4

    @given(st.lists(addrs, max_size=16), addrs)
    def test_index_in_range(self, history, current):
        h = DolcHasher(TRACE_SPEC, 10)
        assert 0 <= h.index(history, current) < (1 << 10)

    @given(st.lists(addrs, min_size=8, max_size=16), addrs)
    def test_long_history_only_uses_window(self, history, current):
        """Entries older than the DOLC depth must not affect the hash."""
        h = DolcHasher(TRACE_SPEC, 10)
        window = history[-(TRACE_SPEC.depth - 1):]
        padded = [0xDEAD00, 0xBEEF00] + window
        assert h.index(padded, current) == h.index(window, current)

    def test_tag_disambiguates(self):
        h = DolcHasher(STREAM_SPEC, 11)
        t1 = h.tag([0x1000], 0x4000)
        t2 = h.tag([0x2000], 0x4000)
        assert t1 != t2
