"""Tests for the dataflow back-end model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.params import default_machine
from repro.common.types import InstrClass
from repro.core.backend import DataflowBackend
from repro.memory.hierarchy import MemoryHierarchy


def backend(width=8):
    machine = default_machine(width)
    return DataflowBackend(machine, MemoryHierarchy(machine.memory))


def alu(d1=0, d2=0):
    return (int(InstrClass.ALU), 1, d1, d2, 0, 0, 0)


def load(d1=0, base=0x10000, stride=8, span=1 << 12):
    return (int(InstrClass.LOAD), 1, d1, 0, base, stride, span)


class TestScheduling:
    def test_independent_instructions_pack_width(self):
        be = backend(width=4)
        completes = [be.dispatch(alu(), (0, i), 0)[0] for i in range(8)]
        # 4 issue slots per cycle: two waves.
        assert completes.count(min(completes)) == 4

    def test_dependence_serializes(self):
        be = backend()
        c1, _ = be.dispatch(alu(), (0, 0), 0)
        c2, _ = be.dispatch(alu(d1=1), (0, 1), 0)
        assert c2 >= c1 + 1

    def test_zero_dep_is_independent(self):
        be = backend()
        be.dispatch(alu(), (0, 0), 0)
        c2, _ = be.dispatch(alu(), (0, 1), 0)
        c1, _ = be.dispatch(alu(), (0, 2), 0)
        assert abs(c1 - c2) <= 1

    def test_commits_in_order(self):
        be = backend()
        commits = []
        for i in range(50):
            meta = alu(d1=(1 if i % 7 == 0 else 0))
            commits.append(be.dispatch(meta, (0, i), i // 8)[1])
        assert commits == sorted(commits)

    def test_commit_width_bounded(self):
        be = backend(width=2)
        commits = [be.dispatch(alu(), (0, i), 0)[1] for i in range(20)]
        from collections import Counter
        per_cycle = Counter(commits)
        assert max(per_cycle.values()) <= 2

    def test_dispatch_cycle_lower_bound(self):
        be = backend()
        complete, _ = be.dispatch(alu(), (0, 0), 100)
        assert complete >= 101


class TestMemoryInstructions:
    def test_load_miss_extends_latency(self):
        be = backend()
        c_hit_path, _ = be.dispatch(alu(), (0, 0), 0)
        # Cold load: misses L1D and L2 -> long completion.
        c_load, _ = be.dispatch(load(), (1, 0), 0)
        assert c_load > c_hit_path + 50

    def test_load_locality_warms_up(self):
        be = backend()
        first, _ = be.dispatch(load(), (2, 0), 0)
        second, _ = be.dispatch(load(), (2, 0), 200)
        # Same slot, stride 8 within one line: second access hits.
        assert second - 200 < first - 0

    def test_stores_do_not_stall_completion(self):
        be = backend()
        store_meta = (int(InstrClass.STORE), 1, 0, 0, 0x90000, 64, 1 << 14)
        complete, _ = be.dispatch(store_meta, (3, 0), 0)
        assert complete <= 3  # store-buffer semantics

    def test_load_counter_advances(self):
        be = backend()
        be.dispatch(load(stride=64), (4, 0), 0)
        be.dispatch(load(stride=64), (4, 0), 0)
        assert be._load_counters[(4, 0)] == 2


class TestWindowModel:
    def test_instruction_count(self):
        be = backend()
        for i in range(10):
            be.dispatch(alu(), (0, i), 0)
        assert be.instructions == 10

    def test_last_commit_monotone(self):
        be = backend()
        last = 0
        for i in range(100):
            _, commit = be.dispatch(alu(d1=i % 3), (0, i), i // 8)
            assert commit >= last
            last = commit

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 4), st.integers(0, 4)),
                    min_size=1, max_size=120))
    def test_property_ipc_never_exceeds_width(self, deps):
        be = backend(width=4)
        n = 0
        for i, (d1, d2) in enumerate(deps):
            be.dispatch(alu(d1=d1, d2=d2), (0, i), i // 4)
            n += 1
        assert n / max(be.last_commit_cycle, 1) <= 4.0 + 1e-9


class TestDispatchProcessorParity:
    """Pin the batched segment scheduler to the canonical model.

    The processor dispatches whole segments through the backend's
    persistent scheduler (template replay + per-slot fallback);
    ``_reference_dispatch=True`` routes every instruction through the
    canonical :meth:`DataflowBackend.dispatch` instead.  The two paths
    must produce identical results, so a semantic edit to one
    implementation without the other fails here.
    """

    def _run(self, arch, reference, width=8):
        from helpers import result_digest

        from repro.common.params import default_machine
        from repro.core.processor import Processor
        from repro.experiments.configs import build_engine
        from repro.isa.trace import TraceWalker
        from repro.isa.workloads import prepare_program, ref_trace_seed
        from repro.memory.hierarchy import MemoryHierarchy

        program = prepare_program("gzip", optimized=False, scale=0.3)
        machine = default_machine(width)
        mem = MemoryHierarchy(machine.memory)
        engine = build_engine(arch, program, machine, mem)
        walker = TraceWalker(program, seed=ref_trace_seed("gzip"))
        processor = Processor(engine, walker, machine, mem)
        result = processor.run(8000, warmup=2000,
                               _reference_dispatch=reference)
        return result_digest(result), processor.backend

    @pytest.mark.parametrize("arch", ["ev8", "ftb", "stream", "trace"])
    def test_batched_matches_reference(self, arch):
        fast, fast_backend = self._run(arch, reference=False)
        ref, ref_backend = self._run(arch, reference=True)
        assert fast == ref
        assert fast_backend.instructions == ref_backend.instructions
        assert fast_backend.last_commit_cycle == ref_backend.last_commit_cycle
        assert fast_backend.load_accesses == ref_backend.load_accesses
        assert fast_backend.store_accesses == ref_backend.store_accesses

    @pytest.mark.parametrize("arch", ["ev8", "stream"])
    def test_narrow_width_matches_reference(self, arch):
        """Width 2 is back-end-bound: the per-slot fallback carries most
        segments there, and must still match the canonical model."""
        fast, _ = self._run(arch, reference=False, width=2)
        ref, _ = self._run(arch, reference=True, width=2)
        assert fast == ref
