"""Tests for SimulationResult derived metrics."""

import pytest

from repro.core.results import SimulationResult


def make(**kwargs):
    defaults = dict(benchmark="x", engine="stream", width=8,
                    optimized=True, cycles=1000, instructions=2500)
    defaults.update(kwargs)
    return SimulationResult(**defaults)


class TestDerivedMetrics:
    def test_ipc(self):
        assert make().ipc == pytest.approx(2.5)

    def test_ipc_zero_cycles(self):
        assert make(cycles=0).ipc == 0.0

    def test_fetch_ipc(self):
        r = make(fetch_cycles=100, fetched_instructions=640)
        assert r.fetch_ipc == pytest.approx(6.4)

    def test_fetch_ipc_no_cycles(self):
        assert make().fetch_ipc == 0.0

    def test_mispred_rate(self):
        r = make(branches=200, mispredictions=5)
        assert r.branch_misprediction_rate == pytest.approx(0.025)

    def test_mispred_rate_no_branches(self):
        assert make().branch_misprediction_rate == 0.0

    def test_cond_mispred_rate(self):
        r = make(cond_branches=100, cond_mispredictions=3)
        assert r.cond_misprediction_rate == pytest.approx(0.03)

    def test_wrong_path_fraction(self):
        r = make(fetched_instructions=1000, wrong_path_instructions=100,
                 fetch_cycles=10)
        assert r.wrong_path_fraction == pytest.approx(0.1)

    def test_summary_mentions_key_fields(self):
        text = make().summary()
        assert "stream" in text
        assert "8-wide" in text
        assert "IPC" in text
