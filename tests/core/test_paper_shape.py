"""Shape tests against the paper's headline claims (scaled-down runs).

These use one small benchmark and modest instruction counts, so they
check *orderings and directions*, not the exact percentages of the
paper; EXPERIMENTS.md records the full-size comparison.
"""

import pytest

from repro.experiments.configs import simulate
from repro.isa.workloads import prepare_program

SCALE = 0.4
N = 40_000
WARMUP = 15_000


@pytest.fixture(scope="module")
def results():
    out = {}
    for optimized in (False, True):
        program = prepare_program("gzip", optimized=optimized, scale=SCALE)
        for arch in ("ev8", "ftb", "stream", "trace"):
            out[(arch, optimized)] = simulate(
                arch, "gzip", width=8, optimized=optimized,
                instructions=N, warmup=WARMUP, scale=SCALE, program=program,
            )
    return out


class TestTable3Shape:
    def test_trace_cache_widest_on_base_layout(self, results):
        """Table 3: with unoptimized code (short sequential runs), only
        the trace cache fetches past taken branches — it must dominate
        the sequential engines decisively."""
        trace = results[("trace", False)].fetch_ipc
        for arch in ("ev8", "ftb", "stream"):
            assert trace > results[(arch, False)].fetch_ipc * 1.1

    def test_trace_cache_competitive_on_optimized(self, results):
        """Optimized streams grow past the 16-instruction trace cap, so
        the gap closes; the trace cache stays near the top."""
        best = max(r.fetch_ipc for r in results.values())
        assert results[("trace", True)].fetch_ipc > best * 0.9

    def test_stream_fetch_at_least_ev8(self, results):
        """Table 3: streams fetch wider than the EV8 on optimized code."""
        assert (results[("stream", True)].fetch_ipc
                >= results[("ev8", True)].fetch_ipc * 0.95)

    def test_mispredictions_reasonable(self, results):
        for (arch, optimized), r in results.items():
            assert r.branch_misprediction_rate < 0.15


class TestFigure8Shape:
    def test_all_ipcs_in_plausible_band(self, results):
        for r in results.values():
            assert 0.5 < r.ipc < 8.0

    def test_stream_beats_ev8_optimized(self, results):
        """The paper's headline: streams >= EV8 with optimized layouts."""
        assert (results[("stream", True)].ipc
                >= results[("ev8", True)].ipc * 0.97)

    def test_stream_close_to_trace_cache(self, results):
        """Streams within a few percent of the trace cache."""
        stream = results[("stream", True)].ipc
        trace = results[("trace", True)].ipc
        assert stream >= trace * 0.9


class TestLayoutEffect:
    def test_optimization_helps_stream_fetch_width(self, results):
        assert (results[("stream", True)].fetch_ipc
                > results[("stream", False)].fetch_ipc)

    def test_optimization_never_catastrophic(self, results):
        for arch in ("ev8", "ftb", "stream", "trace"):
            opt = results[(arch, True)].ipc
            base = results[(arch, False)].ipc
            assert opt > base * 0.85
