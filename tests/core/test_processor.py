"""Integration tests for the trace-driven processor."""

import pytest

from repro.common.params import default_machine
from repro.core.processor import Processor, _TraceCursor
from repro.experiments.configs import build_engine, build_processor
from repro.isa.trace import TraceWalker
from repro.isa.workloads import prepare_program, ref_trace_seed
from repro.memory.hierarchy import MemoryHierarchy


def make_processor(program, arch="stream", width=8, seed=5):
    machine = default_machine(width)
    mem = MemoryHierarchy(machine.memory)
    engine = build_engine(arch, program, machine, mem)
    walker = TraceWalker(program, seed=seed)
    return Processor(engine, walker, machine, mem)


class TestTraceCursor:
    def test_tracks_addresses(self, tiny_program):
        walker = TraceWalker(tiny_program, seed=5)
        shadow = TraceWalker(tiny_program, seed=5)
        cursor = _TraceCursor(walker)
        for _ in range(50):
            dyn = next(shadow)
            for i in range(dyn.size):
                assert cursor.addr == dyn.addr + 4 * i
                assert cursor.at_block_end == (i == dyn.size - 1)
                if cursor.at_block_end:
                    assert cursor.actual_next == dyn.next_addr
                else:
                    assert cursor.actual_next == cursor.addr + 4
                cursor.advance()


class TestRunBasics:
    def test_ipc_positive_and_bounded(self, tiny_program):
        result = make_processor(tiny_program).run(4000)
        assert 0 < result.ipc <= 8

    def test_warmup_excludes_events(self, tiny_program):
        full = make_processor(tiny_program).run(6000)
        measured = make_processor(tiny_program).run(6000, warmup=3000)
        assert measured.instructions < full.instructions
        assert measured.mispredictions <= full.mispredictions
        assert measured.cycles < full.cycles

    def test_wrong_path_instructions_counted(self, gzip_programs):
        base, _ = gzip_programs
        result = make_processor(base, seed=ref_trace_seed("gzip")).run(20000)
        # Mispredictions exist, so wrong-path fetch must have happened.
        assert result.mispredictions > 0
        assert result.wrong_path_instructions > 0

    def test_branch_counts_match_trace(self, tiny_program):
        """Processor branch accounting equals an independent trace count."""
        result = make_processor(tiny_program).run(5000)
        walker = TraceWalker(tiny_program, seed=5)
        branches = taken = instrs = 0
        while instrs < result.instructions:
            dyn = next(walker)
            instrs += dyn.size
            if dyn.kind.is_control:
                if instrs <= result.instructions:
                    branches += 1
                    taken += dyn.taken
        assert abs(result.branches - branches) <= 2
        assert abs(result.taken_branches - taken) <= 2


class TestCrossEngineConsistency:
    """All engines execute the same committed instruction stream."""

    @pytest.mark.parametrize("arch", ["ev8", "ftb", "stream", "trace"])
    def test_same_branch_counts(self, arch, tiny_program):
        result = make_processor(tiny_program, arch=arch).run(5000)
        reference = make_processor(tiny_program, arch="ev8").run(5000)
        assert abs(result.branches - reference.branches) <= 2
        assert abs(result.taken_branches - reference.taken_branches) <= 2


class TestBackpressure:
    def test_rob_gates_fetch(self, gzip_programs):
        """A tiny ROB must create stall cycles and reduce IPC."""
        base, _ = gzip_programs
        from dataclasses import replace
        machine = default_machine(8)
        small = replace(machine, core=replace(machine.core, rob_size=16))
        mem_a = MemoryHierarchy(machine.memory)
        mem_b = MemoryHierarchy(small.memory)
        seed = ref_trace_seed("gzip")
        normal = Processor(
            build_engine("stream", base, machine, mem_a),
            TraceWalker(base, seed), machine, mem_a,
        ).run(15000)
        tiny = Processor(
            build_engine("stream", base, small, mem_b),
            TraceWalker(base, seed), small, mem_b,
        ).run(15000)
        assert tiny.ipc < normal.ipc
        assert tiny.rob_stall_cycles > normal.rob_stall_cycles


class TestBuildProcessorHelper:
    def test_build_processor(self, gzip_programs):
        base, _ = gzip_programs
        processor = build_processor("ftb", base, width=4,
                                    trace_seed=ref_trace_seed("gzip"))
        result = processor.run(5000)
        assert result.width == 4
        assert result.engine == "ftb"
