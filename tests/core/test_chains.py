"""Chained schedule templates: correctness under churn and eviction.

The transition tables are a pure fast path — on any (hit, miss,
install, eviction) interleaving the simulation outputs must be
bit-identical to the keyed path, the per-slot path, and the interpreted
engine.  These tests randomize the machine shape to vary segment
timings (and therefore which chain edges form), force template-store
eviction to exercise the generation invalidation, and pin the
stale-edge guarantee directly.
"""

import random
from dataclasses import replace

import pytest

from helpers import result_digest

from repro.common.params import CacheParams, default_machine
from repro.core import backend as backend_mod
from repro.core.backend import TemplateStore, shared_schedule_templates
from repro.experiments.configs import build_processor
from repro.isa.workloads import prepare_program, ref_trace_seed


@pytest.fixture(scope="module")
def gzip_small():
    return prepare_program("gzip", optimized=True, scale=0.35)


def _build(program, arch, width, mode, machine=None):
    return build_processor(
        arch, program, width,
        benchmark="gzip", optimized=True,
        trace_seed=ref_trace_seed("gzip"),
        machine=machine, engine_mode=mode,
    )


def _run(program, arch, width, mode, machine=None, n=5000, warmup=1000):
    return _build(program, arch, width, mode, machine=machine).run(
        n, warmup=warmup
    )


def _random_machine(rng, width):
    """A legal random variation of the Table 2 machine.

    Varies what the chain layer is sensitive to: dispatch gaps (core
    depths), commit pressure (ROB size), and D-side latencies / miss
    mix (cache sizes and latencies), which drive the probe levels and
    the deep completion deltas.
    """
    base = default_machine(width)
    core = replace(
        base.core,
        dispatch_depth=rng.choice((4, 8, 12)),
        decode_depth=rng.choice((2, 3, 5)),
        rob_size=rng.choice((8, 16, 24)) * width,
        ftq_entries=rng.choice((2, 4, 8)),
    )
    memory = replace(
        base.memory,
        dl1=CacheParams(
            size_bytes=rng.choice((16, 64)) * 1024, assoc=2, line_bytes=64,
        ),
        l2_latency=rng.choice((9, 15, 21)),
        memory_latency=rng.choice((60, 100, 140)),
    )
    return replace(base, core=core, memory=memory)


class TestRandomizedChainParity:
    """accel vs interp x chains on/off over randomized machine shapes."""

    @pytest.mark.parametrize("width", [2, 4, 8])
    @pytest.mark.parametrize("seed", [11, 23])
    def test_modes_and_chain_states_agree(self, gzip_small, width, seed,
                                          monkeypatch):
        rng = random.Random(1000 * width + seed)
        machine = _random_machine(rng, width)
        arch = rng.choice(("ev8", "ftb", "stream", "trace"))
        digests = {}
        for chains in (True, False):
            monkeypatch.setenv(backend_mod.CHAINS_ENV,
                               "1" if chains else "0")
            for mode in ("accel", "interp"):
                result = _run(gzip_small, arch, width, mode,
                              machine=machine)
                digests[(chains, mode)] = result_digest(result)
                if not chains:
                    assert result.extras["chain_hits"] == 0
        reference = digests[(True, "accel")]
        for key, digest in digests.items():
            assert digest == reference, f"divergence at {key}"

    def test_chain_hits_actually_happen(self, gzip_small):
        """The parity above must not pass vacuously: on the default
        machine the chained path carries the bulk of the segments."""
        result = _run(gzip_small, "ev8", 8, "accel", n=20_000, warmup=0)
        result = _run(gzip_small, "ev8", 8, "accel", n=20_000, warmup=0)
        assert result.extras["segments"] > 1000
        assert result.extras["chain_hit_rate"] > 0.8


class TestForcedEviction:
    """Generation invalidation under template-store churn."""

    def test_results_identical_under_eviction_churn(self, gzip_small,
                                                    monkeypatch):
        reference = result_digest(
            _run(gzip_small, "stream", 8, "accel", n=8000)
        )
        # A tiny cache limit forces the shared store to clear every few
        # recordings — every chain edge repeatedly goes stale mid-run.
        from repro.accel import clear_compile_cache, core_gen

        monkeypatch.setattr(backend_mod, "_TPL_CACHE_LIMIT", 8)
        monkeypatch.setattr(core_gen, "_TPL_CACHE_LIMIT", 8)
        clear_compile_cache()
        try:
            for mode in ("accel", "interp"):
                churned = _run(gzip_small, "stream", 8, mode, n=8000)
                assert result_digest(churned) == reference, mode
        finally:
            clear_compile_cache()

    def test_stale_edge_never_replays_freed_template(self, gzip_small):
        """After an eviction the chain must reject every stale edge:
        the hit counter pauses, and the re-grown store contains only
        current-generation templates and edges."""
        processor = _build(gzip_small, "ev8", 8, "interp")
        backend = processor.backend
        store = backend._templates
        processor.run(4000)
        hits_before = backend.chain_hits
        assert hits_before > 0  # chains were active
        stale = [tpl for tpl in store.values() if tpl[8]]
        assert stale, "no transition edges were installed"
        generation_before = store.generation

        # Force the eviction the cache-limit path would perform.
        store.clear()
        assert store.generation == generation_before + 1

        # The scheduler still holds the stale previous template; its
        # first segment after the eviction must not chain-hit.
        processor.run(1)
        assert backend.chain_hits == hits_before

        # Continue through re-recording: every template and every edge
        # successor in the re-grown store carries the new generation —
        # no edge can reach a freed (old-generation) template.
        processor.run(4000)
        assert backend.chain_hits > hits_before  # chains re-armed
        for tpl in store.values():
            assert tpl[7] == store.generation
            for rec in tpl[8].values():
                if rec.__class__ is tuple:  # fast edge: the successor
                    assert rec[7] == store.generation
                    continue
                for _k0, lvl_map in rec[5].values():
                    for successor in lvl_map.values():
                        assert successor[7] == store.generation

    def test_edge_installation_is_bounded(self, gzip_small):
        processor = _build(gzip_small, "trace", 8, "accel")
        processor.run(30_000)
        for tpl in processor.backend._templates.values():
            assert len(tpl[8]) <= backend_mod._CHAIN_EDGE_LIMIT
            for rec in tpl[8].values():
                if rec.__class__ is tuple:  # fast edge: bound is trivial
                    continue
                assert len(rec[5]) <= backend_mod._CHAIN_DEEP_LIMIT
                for _k0, lvl_map in rec[5].values():
                    assert len(lvl_map) <= backend_mod._CHAIN_LVL_LIMIT


class TestTemplateStore:
    def test_clear_bumps_generation(self):
        store = TemplateStore()
        assert store.generation == 0
        store["k"] = "v"
        store.clear()
        assert store.generation == 1
        assert not store

    def test_shared_store_is_generation_aware(self, gzip_small):
        store = shared_schedule_templates(gzip_small, 8, (0, 14, 114))
        assert isinstance(store, TemplateStore)


class TestExtras:
    def test_extras_report_chain_rate(self, gzip_small):
        result = _run(gzip_small, "ftb", 8, "accel", n=4000)
        x = result.extras
        assert set(x) == {"segments", "chain_hits", "chain_hit_rate"}
        assert x["segments"] > 0
        assert 0.0 <= x["chain_hit_rate"] <= 1.0

    def test_extras_never_break_equality(self, gzip_small):
        a = _run(gzip_small, "ftb", 8, "accel", n=3000)
        b = _run(gzip_small, "ftb", 8, "interp", n=3000)
        assert a == b  # dataclass equality excludes extras
        assert a.extras != b.extras or a.extras == b.extras  # present

    def test_extras_stripped_from_stored_artifacts(self, gzip_small):
        from repro.store import serialize

        result = _run(gzip_small, "ftb", 8, "accel", n=3000)
        assert result.extras
        decoded = serialize.load_result(serialize.dump_result(result))
        assert decoded.extras == {}
        assert result_digest(decoded) == result_digest(result)
