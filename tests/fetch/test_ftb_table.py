"""Tests for the Fetch Target Buffer table semantics."""

import pytest

from repro.common.types import BranchKind
from repro.fetch.ftb import FTB_MAX_LENGTH, FetchTargetBuffer


class TestFTBTable:
    def test_miss_then_hit(self):
        ftb = FetchTargetBuffer(64, 4)
        assert ftb.lookup(0x1000) is None
        ftb.update(0x1000, 6, 0x2000, BranchKind.COND)
        entry = ftb.lookup(0x1000)
        assert entry.length == 6
        assert entry.target == 0x2000

    def test_shorter_block_wins(self):
        """A newly-taken embedded branch splits the block: the shorter
        version must replace the longer one."""
        ftb = FetchTargetBuffer(64, 4)
        ftb.update(0x1000, 12, 0x2000, BranchKind.COND)
        ftb.update(0x1000, 5, 0x3000, BranchKind.COND)
        assert ftb.lookup(0x1000).length == 5

    def test_longer_block_does_not_replace(self):
        ftb = FetchTargetBuffer(64, 4)
        ftb.update(0x1000, 5, 0x3000, BranchKind.COND)
        ftb.update(0x1000, 12, 0x2000, BranchKind.COND)
        assert ftb.lookup(0x1000).length == 5

    def test_same_length_updates_target(self):
        ftb = FetchTargetBuffer(64, 4)
        ftb.update(0x1000, 5, 0x3000, BranchKind.IND)
        ftb.update(0x1000, 5, 0x4000, BranchKind.IND)
        assert ftb.lookup(0x1000).target == 0x4000

    def test_sequential_continuation_entries(self):
        """Max-length sequential blocks (kind NONE) are first-class."""
        ftb = FetchTargetBuffer(64, 4)
        nxt = 0x1000 + FTB_MAX_LENGTH * 4
        ftb.update(0x1000, FTB_MAX_LENGTH, nxt, BranchKind.NONE)
        entry = ftb.lookup(0x1000)
        assert entry.kind is BranchKind.NONE
        assert entry.length == FTB_MAX_LENGTH

    def test_lru_within_set(self):
        ftb = FetchTargetBuffer(4, 2)  # 2 sets
        stride = 2 * 4
        ftb.update(0x1000, 4, 1, BranchKind.JUMP)
        ftb.update(0x1000 + stride, 4, 2, BranchKind.JUMP)
        ftb.lookup(0x1000)
        ftb.update(0x1000 + 2 * stride, 4, 3, BranchKind.JUMP)
        assert ftb.lookup(0x1000) is not None
        assert ftb.probe(0x1000 + stride) is None

    def test_probe_does_not_touch_lru(self):
        ftb = FetchTargetBuffer(4, 2)
        stride = 2 * 4
        ftb.update(0x1000, 4, 1, BranchKind.JUMP)
        ftb.update(0x1000 + stride, 4, 2, BranchKind.JUMP)
        ftb.probe(0x1000)  # must NOT refresh
        ftb.update(0x1000 + 2 * stride, 4, 3, BranchKind.JUMP)
        assert ftb.probe(0x1000) is None  # evicted despite the probe

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            FetchTargetBuffer(10, 4)
