"""Tests for trace cache partial matching (the §4.1 footnote feature)."""

import pytest

from repro.common.params import default_machine
from repro.core.processor import Processor
from repro.fetch.trace_cache import TraceCacheFetchEngine
from repro.isa.trace import TraceWalker
from repro.memory.hierarchy import MemoryHierarchy


def run(program, partial_matching, n=12000):
    machine = default_machine(8)
    mem = MemoryHierarchy(machine.memory)
    engine = TraceCacheFetchEngine(
        program, machine, mem, partial_matching=partial_matching,
    )
    walker = TraceWalker(program, seed=5)
    result = Processor(engine, walker, machine, mem).run(n)
    return result, engine


class TestPartialMatching:
    def test_disabled_by_default_counts_nothing(self, tiny_program):
        _, engine = run(tiny_program, partial_matching=False)
        assert engine.stats.as_dict().get("tc_partial_hits", 0) == 0

    def test_enabled_still_correct(self, tiny_program):
        """Partial matching must not corrupt the fetch stream: the
        processor asserts per-instruction cursor consistency, so a
        completed run is itself the correctness check."""
        result, engine = run(tiny_program, partial_matching=True)
        assert result.instructions >= 12000

    def test_enabled_vs_disabled_ipc_close(self, gzip_programs):
        """The paper: partial matching does not pay off with optimized
        layouts.  We check it is at best a small effect either way."""
        _, opt = gzip_programs
        with_pm, _ = run(opt, partial_matching=True, n=20000)
        without, _ = run(opt, partial_matching=False, n=20000)
        assert with_pm.ipc == pytest.approx(without.ipc, rel=0.15)
