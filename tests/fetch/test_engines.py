"""Behavioural tests for the four fetch engines on a tiny program.

These drive engines through the full Processor (the contract is easiest
to exercise end-to-end), asserting per-engine invariants on the
resulting statistics.
"""

import pytest

from repro.common.params import default_machine
from repro.core.processor import Processor
from repro.experiments.configs import ARCHITECTURES, build_engine
from repro.isa.trace import TraceWalker
from repro.memory.hierarchy import MemoryHierarchy

N_INSTR = 6000


def run_engine(arch, program, width=8, n=N_INSTR, **overrides):
    machine = default_machine(width)
    mem = MemoryHierarchy(machine.memory)
    engine = build_engine(arch, program, machine, mem, **overrides)
    walker = TraceWalker(program, seed=5)
    processor = Processor(engine, walker, machine, mem)
    result = processor.run(n)
    return result, engine


@pytest.mark.parametrize("arch", ARCHITECTURES)
class TestAllEngines:
    def test_completes_and_counts(self, arch, tiny_program):
        result, _ = run_engine(arch, tiny_program)
        # The run stops at the first bundle boundary past the target.
        assert N_INSTR <= result.instructions < N_INSTR + 8
        assert result.cycles > 0
        assert 0 < result.ipc <= 8.0

    def test_branch_accounting(self, arch, tiny_program):
        result, _ = run_engine(arch, tiny_program)
        assert result.branches > 0
        assert result.mispredictions <= result.branches
        assert result.taken_branches <= result.branches

    def test_fetch_width_bounded(self, arch, tiny_program):
        result, _ = run_engine(arch, tiny_program)
        assert 0 < result.fetch_ipc <= 8.0

    def test_deterministic(self, arch, tiny_program):
        r1, _ = run_engine(arch, tiny_program, n=3000)
        r2, _ = run_engine(arch, tiny_program, n=3000)
        assert r1.cycles == r2.cycles
        assert r1.mispredictions == r2.mispredictions

    def test_learns_the_loop(self, arch, tiny_program):
        """The tiny loop is highly predictable: after warm-up every
        engine must be well below a 20% misprediction rate."""
        result, _ = run_engine(arch, tiny_program)
        assert result.branch_misprediction_rate < 0.2

    def test_narrow_machine_slower(self, arch, tiny_program):
        wide, _ = run_engine(arch, tiny_program, width=8, n=4000)
        narrow, _ = run_engine(arch, tiny_program, width=2, n=4000)
        assert narrow.ipc < wide.ipc + 0.2


class TestEV8Specifics:
    def test_predicts_conditionals(self, tiny_program):
        _, engine = run_engine("ev8", tiny_program)
        assert engine.stats["cond_predictions"] > 0

    def test_btb_populated(self, tiny_program):
        _, engine = run_engine("ev8", tiny_program)
        assert engine.btb.stats["allocations"] > 0


class TestFTBSpecifics:
    def test_ftb_hits_after_warmup(self, tiny_program):
        _, engine = run_engine("ftb", tiny_program)
        assert engine.stats["ftb_hits"] > engine.stats["ftb_misses"]

    def test_ftq_used(self, tiny_program):
        _, engine = run_engine("ftb", tiny_program)
        assert engine.ftq.pushes > 0


class TestStreamSpecifics:
    def test_predictor_hits_dominate(self, tiny_program):
        _, engine = run_engine("stream", tiny_program)
        assert engine.stats["stream_pred_hits"] > engine.stats[
            "stream_pred_misses"
        ]

    def test_streams_reconstructed_at_commit(self, tiny_program):
        _, engine = run_engine("stream", tiny_program)
        assert engine.stats["streams_committed"] > 0
        avg = (engine.stats["stream_instructions"]
               / engine.stats["streams_committed"])
        assert 2.0 < avg < 64.0

    def test_single_instruction_path(self, tiny_program):
        """No trace cache, no second predictor: stream engines have
        exactly one instruction source (the I-cache)."""
        _, engine = run_engine("stream", tiny_program)
        assert not hasattr(engine, "trace_cache")
        assert not hasattr(engine, "btb")


class TestTraceCacheSpecifics:
    def test_trace_cache_hits_after_warmup(self, tiny_program):
        result, engine = run_engine("trace", tiny_program)
        assert engine.stats.as_dict().get("tc_hits", 0) > 0

    def test_traces_filled_at_commit(self, tiny_program):
        _, engine = run_engine("trace", tiny_program)
        assert engine.stats["traces_committed"] > 0

    def test_selective_storage_skips_blue_traces(self, gzip_programs):
        """Sequential ('blue') traces must not enter the trace cache."""
        _, opt = gzip_programs
        _, engine = run_engine("trace", opt, n=20000)
        assert engine.trace_cache.stats["selective_skips"] > 0

    def test_trace_cache_beats_streams_on_fetch_width(self, gzip_programs):
        """The TC's reason to exist: fetching past taken branches."""
        base, _ = gzip_programs
        r_trace, _ = run_engine("trace", base, n=20000)
        r_stream, _ = run_engine("stream", base, n=20000)
        assert r_trace.fetch_ipc > r_stream.fetch_ipc
