"""Tests for the fetch target queue and Fig. 6 request updates."""

import pytest

from repro.common.types import BranchKind
from repro.fetch.ftq import FetchRequest, FetchTargetQueue


class TestFetchRequest:
    def test_terminal_addr(self):
        req = FetchRequest(0x1000, 5, BranchKind.COND, 0x2000)
        assert req.terminal_addr == 0x1000 + 4 * 4

    def test_consume_advances_start(self):
        """Fig. 6: 'the stream starting address is advanced, and the
        stream length is reduced appropriately'."""
        req = FetchRequest(0x1000, 10, BranchKind.COND, 0x2000)
        done = req.consume(4)
        assert not done
        assert req.start == 0x1010
        assert req.remaining == 6

    def test_consume_to_completion(self):
        req = FetchRequest(0x1000, 3, None, 0x100C)
        assert req.consume(3) is True

    def test_consume_rejects_overrun(self):
        req = FetchRequest(0x1000, 3, None, 0x100C)
        with pytest.raises(ValueError):
            req.consume(4)

    def test_rejects_empty_request(self):
        with pytest.raises(ValueError):
            FetchRequest(0x1000, 0, None, 0x1000)


class TestFetchTargetQueue:
    def test_fifo_order(self):
        q = FetchTargetQueue(4)
        r1 = FetchRequest(0x1000, 4, None, 0x1010)
        r2 = FetchRequest(0x2000, 4, None, 0x2010)
        q.push(r1)
        q.push(r2)
        assert q.head() is r1
        assert q.pop() is r1
        assert q.head() is r2

    def test_capacity(self):
        q = FetchTargetQueue(2)
        q.push(FetchRequest(0x1000, 1, None, 0x1004))
        q.push(FetchRequest(0x2000, 1, None, 0x2004))
        assert q.full
        with pytest.raises(RuntimeError):
            q.push(FetchRequest(0x3000, 1, None, 0x3004))

    def test_flush(self):
        q = FetchTargetQueue(4)
        q.push(FetchRequest(0x1000, 1, None, 0x1004))
        q.flush()
        assert q.empty
        assert q.flushes == 1

    def test_flush_empty_not_counted(self):
        q = FetchTargetQueue(4)
        q.flush()
        assert q.flushes == 0

    def test_head_of_empty(self):
        assert FetchTargetQueue(4).head() is None

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            FetchTargetQueue(0)

    def test_occupancy(self):
        q = FetchTargetQueue(4)
        assert q.occupancy() == 0
        q.push(FetchRequest(0x1000, 1, None, 0x1004))
        assert q.occupancy() == 1
