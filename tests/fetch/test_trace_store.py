"""Tests for the trace cache storage and the fill-unit descriptor rules."""

import pytest

from repro.common.types import BranchKind
from repro.fetch.trace_cache import TraceStore, _FillBuffer
from repro.fetch.trace_predictor import TraceDescriptor


def desc(start=0x1000, outcomes=(True,), shape=((0x1000, 6), (0x1200, 6)),
         nxt=0x2000):
    return TraceDescriptor(
        start=start, outcomes=tuple(outcomes), segments=tuple(shape),
        length=sum(n for _, n in shape), terminal_kind=BranchKind.COND,
        next_addr=nxt,
    )


class TestTraceStore:
    def test_miss_then_hit(self):
        store = TraceStore(entries=64, assoc=2)
        d = desc()
        assert store.lookup(d) is False
        store.insert(d)
        assert store.lookup(d) is True

    def test_outcome_bits_distinguish(self):
        """Same start, different embedded outcomes: distinct traces."""
        store = TraceStore(entries=64, assoc=2)
        store.insert(desc(outcomes=(True,)))
        assert store.lookup(desc(outcomes=(False,))) is False

    def test_reinsert_updates_in_place(self):
        store = TraceStore(entries=64, assoc=2)
        store.insert(desc())
        store.insert(desc())
        assert store.stats["fills"] == 1

    def test_lru_eviction(self):
        store = TraceStore(entries=4, assoc=2)  # 2 sets
        set_stride = 2 * 4  # num_sets * 4 bytes
        a = desc(start=0x1000, shape=((0x1000, 6), (0x1100, 6)))
        b = desc(start=0x1000 + set_stride,
                 shape=((0x1000 + set_stride, 6), (0x1200, 6)))
        c = desc(start=0x1000 + 2 * set_stride,
                 shape=((0x1000 + 2 * set_stride, 6), (0x1300, 6)))
        store.insert(a)
        store.insert(b)
        store.lookup(a)
        store.insert(c)  # evicts b
        assert store.lookup(a)
        assert not store.lookup(b)

    def test_partial_match_prefix(self):
        store = TraceStore(entries=64, assoc=2)
        stored = desc(outcomes=(True,))
        store.insert(stored)
        predicted = TraceDescriptor(
            start=0x1000, outcomes=(True, False),
            segments=((0x1000, 6), (0x1200, 6), (0x1400, 4)),
            length=16, terminal_kind=BranchKind.COND, next_addr=0x9000,
        )
        assert store.partial_match(predicted) == stored

    def test_partial_match_rejects_mismatch(self):
        store = TraceStore(entries=64, assoc=2)
        store.insert(desc(outcomes=(True,)))
        predicted = desc(outcomes=(False,))
        assert store.partial_match(predicted) is None


class TestFillBuffer:
    def test_contiguous_runs_merge(self):
        fill = _FillBuffer()
        fill.reset(0x1000)
        fill.add_run(0x1000, 4)
        fill.add_run(0x1010, 3)  # contiguous
        assert len(fill.segments) == 1
        assert fill.segments[0] == [0x1000, 7]

    def test_taken_branch_starts_new_segment(self):
        fill = _FillBuffer()
        fill.reset(0x1000)
        fill.add_run(0x1000, 4)
        fill.add_run(0x2000, 3)  # non-contiguous (after a taken branch)
        assert len(fill.segments) == 2

    def test_finalize_produces_descriptor_and_resets(self):
        fill = _FillBuffer()
        fill.reset(0x1000)
        fill.add_run(0x1000, 4)
        fill.outcomes.append(True)
        d = fill.finalize(BranchKind.COND, 0x3000)
        assert d.start == 0x1000
        assert d.length == 4
        assert d.next_addr == 0x3000
        assert fill.empty
        assert fill.start == 0x3000
