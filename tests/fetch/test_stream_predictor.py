"""Tests for the cascaded next stream predictor (paper §3.2, Fig. 5)."""

import pytest

from repro.common.types import BranchKind
from repro.fetch.stream_predictor import (
    MAX_STREAM_LENGTH,
    NextStreamPredictor,
    StreamPredictorConfig,
    StreamRecord,
)


def rec(start, length=8, kind=BranchKind.COND, nxt=0x9000):
    return StreamRecord(start, length, kind, nxt)


class TestBasics:
    def test_cold_miss(self):
        p = NextStreamPredictor()
        assert p.predict([], 0x1000) is None

    def test_learns_stream(self):
        p = NextStreamPredictor()
        p.update([], rec(0x1000, 12, BranchKind.COND, 0x2000), False)
        pred = p.predict([], 0x1000)
        assert pred is not None
        assert pred.length == 12
        assert pred.next_addr == 0x2000
        assert pred.kind is BranchKind.COND

    def test_table2_geometry(self):
        cfg = StreamPredictorConfig()
        assert cfg.first_entries == 1024 and cfg.first_assoc == 4
        assert cfg.second_entries == 6 * 1024 and cfg.second_assoc == 3
        assert (cfg.dolc.depth, cfg.dolc.older_bits,
                cfg.dolc.last_bits, cfg.dolc.current_bits) == (12, 2, 4, 10)

    def test_record_length_bounds(self):
        with pytest.raises(ValueError):
            StreamRecord(0x1000, 0, BranchKind.COND, 0x2000)
        with pytest.raises(ValueError):
            StreamRecord(0x1000, MAX_STREAM_LENGTH + 1, BranchKind.COND, 0x2000)


class TestHysteresis:
    """The §3.2 replacement policy."""

    def test_matching_update_strengthens(self):
        p = NextStreamPredictor()
        r = rec(0x1000)
        for _ in range(3):
            p.update([], r, False)
        # Now one conflicting update must NOT replace the data.
        p.update([], rec(0x1000, 20, BranchKind.COND, 0x3000), False)
        assert p.predict([], 0x1000).length == 8

    def test_counter_reaches_zero_then_replaces(self):
        p = NextStreamPredictor()
        old = rec(0x1000, 8)
        new = rec(0x1000, 20, BranchKind.COND, 0x3000)
        p.update([], old, False)          # counter = 1
        p.update([], new, False)          # counter 1 -> 0
        p.update([], new, False)          # counter 0 -> replace, counter=1
        assert p.predict([], 0x1000).length == 20

    def test_majority_stream_survives_minority(self):
        """An 80%-not-taken branch: the long stream stays resident."""
        p = NextStreamPredictor()
        long_stream = rec(0x1000, 24, BranchKind.COND, 0x2000)
        short_stream = rec(0x1000, 6, BranchKind.COND, 0x1800)
        for _ in range(40):
            for _ in range(4):
                p.update([], long_stream, False)
            p.update([], short_stream, False)
        assert p.predict([], 0x1000).length == 24


class TestCascade:
    def test_path_table_wins_on_conflict(self):
        """Overlapping streams disambiguated by path correlation."""
        p = NextStreamPredictor()
        path_a = [0x100, 0x200, 0x300]
        path_b = [0x500, 0x600, 0x700]
        stream_a = rec(0x1000, 10, BranchKind.COND, 0x2000)
        stream_b = rec(0x1000, 30, BranchKind.COND, 0x3000)
        for _ in range(6):
            p.update(path_a, stream_a, True)   # mispredicted -> upgraded
            p.update(path_b, stream_b, True)
        pred_a = p.predict(path_a, 0x1000)
        pred_b = p.predict(path_b, 0x1000)
        assert pred_a.length == 10
        assert pred_b.length == 30
        assert pred_a.from_path_table or pred_b.from_path_table

    def test_loop_trip_counting(self):
        """The cascade predicts a fixed-trip loop exit via the path."""
        p = NextStreamPredictor()
        body = rec(0x100, 10, BranchKind.COND, 0x100)
        exit_ = rec(0x100, 22, BranchKind.COND, 0x300)
        tail = rec(0x300, 6, BranchKind.JUMP, 0x50)
        entry = rec(0x50, 8, BranchKind.COND, 0x100)
        seq = [entry, body, body, body, exit_, tail]

        hist = []
        correct = total = 0
        for round_ in range(120):
            for r in seq:
                pred = p.predict(hist, r.start)
                ok = (pred is not None and pred.length == r.length
                      and pred.next_addr == r.next_addr)
                if round_ >= 20:
                    total += 1
                    correct += ok
                p.update(hist, r, not ok)
                hist.append(r.start)
                if len(hist) > 12:
                    hist.pop(0)
        assert correct / total > 0.95

    def test_upgrade_only_on_mispredict(self):
        """Streams that the first level predicts fine never enter the
        second table (the anti-aliasing rule of §3.2)."""
        p = NextStreamPredictor()
        r = rec(0x1000)
        p.update([0x10], r, False)   # first appearance: enters both
        for _ in range(10):
            p.update([0x20, 0x30], r, False)  # different paths, no misp
        assert p.stats["upgrades"] == 0


class TestAliasing:
    def test_different_tags_coexist_in_set(self):
        p = NextStreamPredictor()
        # Two addresses mapping to (likely) different tags.
        p.update([], rec(0x1000, 8), False)
        p.update([], rec(0x1000 + 4 * 1024 * 1024, 16), False)
        assert p.predict([], 0x1000).length == 8

    def test_stats_track_sources(self):
        p = NextStreamPredictor()
        p.update([], rec(0x1000), False)
        p.predict([], 0x1000)
        assert p.stats["address_hits"] + p.stats["path_hits"] == 1
