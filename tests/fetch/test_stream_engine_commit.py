"""Unit tests for the stream engine's commit-side reconstruction.

These feed hand-crafted DynBlock sequences to ``note_commit`` and check
the streams the predictor learns — including the paper's partial-stream
semantics around mispredictions (§1) and the length cap.
"""

import pytest

from repro.common.params import default_machine
from repro.common.types import BranchKind
from repro.fetch.stream import StreamFetchEngine
from repro.fetch.stream_predictor import MAX_STREAM_LENGTH
from repro.isa.trace import DynBlock, TraceWalker
from repro.memory.hierarchy import MemoryHierarchy


@pytest.fixture
def engine(tiny_program, machine8, mem8):
    return StreamFetchEngine(tiny_program, machine8, mem8)


def dyn_for(program, addr, taken, next_addr):
    lb, off = program.block_containing(addr)
    assert off == 0
    return DynBlock(lb, taken, next_addr)


class TestCommitReconstruction:
    def test_stream_crosses_not_taken_branches(self, engine, tiny_program):
        """NT branches are invisible: blocks accumulate into one stream."""
        a = tiny_program.linear_blocks[0]   # COND block (A)
        b = tiny_program.linear_blocks[1]   # NONE (B)
        d = tiny_program.linear_blocks[3]   # COND (D, loop tail)
        engine._s_start = a.addr
        engine._s_len = 0
        engine.note_commit(DynBlock(a, False, b.addr), None, False)
        engine.note_commit(DynBlock(b, False, d.addr), None, False)
        assert engine.stats["streams_committed"] == 0  # still open
        engine.note_commit(DynBlock(d, True, a.addr), None, False)
        assert engine.stats["streams_committed"] == 1
        # The recorded stream covers A+B+D.
        pred = engine.predictor.predict([], a.addr)
        assert pred is not None
        assert pred.length == a.size + b.size + d.size
        assert pred.next_addr == a.addr

    def test_partial_stream_recorded_on_nt_mispredict(self, engine,
                                                      tiny_program):
        """A mispredicted not-taken terminal creates a partial stream
        at its fall-through AND keeps the enclosing long stream."""
        a = tiny_program.linear_blocks[0]
        b = tiny_program.linear_blocks[1]
        d = tiny_program.linear_blocks[3]
        engine._s_start = a.addr
        # A falls through; the engine had predicted taken (mispredict).
        engine.note_commit(DynBlock(a, False, b.addr), None, True)
        engine.note_commit(DynBlock(b, False, d.addr), None, False)
        engine.note_commit(DynBlock(d, True, a.addr), None, False)
        assert engine.stats["partial_streams_committed"] == 1
        # Long stream keyed at A.
        long_pred = engine.predictor.predict([], a.addr)
        assert long_pred.length == a.size + b.size + d.size
        # Partial stream keyed at B (the redirect target).
        part_pred = engine.predictor.predict([], b.addr)
        assert part_pred is not None
        assert part_pred.length == b.size + d.size

    def test_taken_mispredict_splits_stream(self, engine, tiny_program):
        """An intermediate branch that was taken (predicted NT) ends the
        commit-side stream there; the next stream starts at its target."""
        a = tiny_program.linear_blocks[0]
        c = tiny_program.linear_blocks[2]
        d = tiny_program.linear_blocks[3]
        engine._s_start = a.addr
        engine.note_commit(DynBlock(a, True, c.addr), None, True)
        assert engine.stats["streams_committed"] == 1
        pred = engine.predictor.predict([], a.addr)
        assert pred.length == a.size
        assert pred.next_addr == c.addr
        assert engine._s_start == c.addr

    def test_long_run_capped(self, engine, tiny_program):
        """Runs longer than the length field split into capped
        pseudo-streams that continue sequentially."""
        a = tiny_program.linear_blocks[0]
        engine._s_start = a.addr
        # Simulate a giant sequential run by faking the open length.
        engine._s_len = MAX_STREAM_LENGTH + 10 - a.size
        engine.note_commit(DynBlock(a, True, a.addr), None, False)
        capped = engine.predictor.predict([], a.addr)
        assert capped is not None
        assert capped.length == MAX_STREAM_LENGTH
        assert capped.kind is BranchKind.NONE
        assert capped.next_addr == a.addr + MAX_STREAM_LENGTH * 4
