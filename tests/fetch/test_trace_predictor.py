"""Tests for the next trace predictor and trace descriptors."""

import pytest

from repro.common.types import BranchKind
from repro.fetch.trace_predictor import (
    MAX_TRACE_BRANCHES,
    MAX_TRACE_LENGTH,
    NextTracePredictor,
    TraceDescriptor,
    TracePredictorConfig,
)


def desc(start=0x1000, outcomes=(True,), segments=None, nxt=0x2000,
         kind=BranchKind.COND):
    if segments is None:
        segments = ((start, 6), (start + 0x100, 6))
    length = sum(n for _, n in segments)
    return TraceDescriptor(
        start=start, outcomes=tuple(outcomes), segments=tuple(segments),
        length=length, terminal_kind=kind, next_addr=nxt,
    )


class TestDescriptor:
    def test_outcome_bits(self):
        d = desc(outcomes=(True, False, True))
        assert d.outcome_bits == 0b101

    def test_key_distinguishes_outcomes(self):
        a = desc(outcomes=(True,))
        b = desc(outcomes=(False,))
        assert a.key != b.key

    def test_interior_taken(self):
        multi = desc()
        single = desc(segments=((0x1000, 12),))
        assert multi.interior_taken
        assert not single.interior_taken

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            TraceDescriptor(
                start=0x1000, outcomes=(), segments=((0x1000, 4),),
                length=5, terminal_kind=BranchKind.COND, next_addr=0,
            )

    def test_rejects_too_many_branches(self):
        with pytest.raises(ValueError):
            desc(outcomes=(True,) * (MAX_TRACE_BRANCHES + 1))

    def test_rejects_empty_segments(self):
        with pytest.raises(ValueError):
            TraceDescriptor(
                start=0x1000, outcomes=(), segments=(),
                length=0, terminal_kind=BranchKind.COND, next_addr=0,
            )


class TestPredictor:
    def test_table2_geometry(self):
        cfg = TracePredictorConfig()
        assert cfg.first_entries == 1024 and cfg.first_assoc == 4
        assert cfg.second_entries == 4096 and cfg.second_assoc == 4
        assert (cfg.dolc.depth, cfg.dolc.older_bits,
                cfg.dolc.last_bits, cfg.dolc.current_bits) == (9, 4, 7, 9)

    def test_cold_miss(self):
        assert NextTracePredictor().predict([], 0x1000) is None

    def test_learns_descriptor(self):
        p = NextTracePredictor()
        d = desc()
        p.update([], d, False)
        assert p.predict([], 0x1000) == d

    def test_alias_reject(self):
        """An entry describing a different start address is unusable."""
        p = NextTracePredictor()
        p.update([], desc(start=0x1000), False)
        # Find another address with the same t1 index but same tag is
        # nearly impossible; instead verify normal lookups at other
        # addresses miss rather than return the wrong descriptor.
        assert p.predict([], 0x1040) is None

    def test_path_disambiguation(self):
        p = NextTracePredictor()
        d_a = desc(outcomes=(True, False), nxt=0x2000)
        d_b = desc(outcomes=(False, True), nxt=0x3000)
        path_a, path_b = [0x111], [0x999]
        for _ in range(6):
            p.update(path_a, d_a, True)
            p.update(path_b, d_b, True)
        assert p.predict(path_a, 0x1000) == d_a
        assert p.predict(path_b, 0x1000) == d_b

    def test_hysteresis_protects_majority(self):
        p = NextTracePredictor()
        major = desc(outcomes=(True,))
        minor = desc(outcomes=(False,))
        for _ in range(30):
            p.update([], major, False)
            p.update([], major, False)
            p.update([], minor, False)
        assert p.predict([], 0x1000) == major
