"""Tests for the pre-decode scan helper shared by the engines."""

from repro.common.types import INSTRUCTION_BYTES, BranchKind
from repro.fetch.base import scan_run


class TestScanRun:
    def test_finds_controls_in_window(self, tiny_program):
        entry = tiny_program.entry_address
        lb = tiny_program.block_starting_at(entry)
        image_instrs = sum(b.size for b in tiny_program.linear_blocks)
        controls, n = scan_run(tiny_program, entry, 32)
        assert n == min(32, image_instrs)
        assert controls[0][0] == lb.branch_addr
        assert controls[0][1] is lb

    def test_mid_block_start(self, tiny_program):
        entry = tiny_program.entry_address
        controls, n = scan_run(tiny_program, entry + INSTRUCTION_BYTES, 8)
        # Still sees block A's terminal branch.
        lb = tiny_program.block_starting_at(entry)
        assert (lb.branch_addr, lb) in controls

    def test_window_excludes_later_controls(self, tiny_program):
        entry = tiny_program.entry_address
        controls_small, _ = scan_run(tiny_program, entry, 2)
        controls_large, _ = scan_run(tiny_program, entry, 40)
        assert len(controls_large) > len(controls_small)

    def test_truncates_at_image_end(self, tiny_program):
        last = tiny_program.linear_blocks[-1]
        controls, n = scan_run(tiny_program, last.addr, 100)
        assert n == last.size

    def test_off_image_scans_nothing(self, tiny_program):
        controls, n = scan_run(tiny_program, tiny_program.end_address + 64, 8)
        assert n == 0
        assert controls == []

    def test_controls_in_order(self, tiny_program):
        controls, _ = scan_run(tiny_program, tiny_program.entry_address, 64)
        addrs = [addr for addr, _ in controls]
        assert addrs == sorted(addrs)
