"""Tier-1 perf smoke: run ``bench_perf.py --quick`` and fail loudly on
a >30% regression against the committed ``BENCH_perf.json`` baseline.

The quick mode measures a few hundred milliseconds of simulation per
engine (best-of-3, so scheduler noise is filtered) — cheap enough for
every test run, sensitive enough to catch a real hot-path regression.
"""

import os
import subprocess
import sys

import pytest

REPO_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "..")
)
BENCH_PERF = os.path.join(REPO_ROOT, "benchmarks", "bench_perf.py")


def test_quick_perf_smoke(tmp_path):
    if os.environ.get("REPRO_SKIP_PERF_SMOKE"):
        # The committed BENCH_perf.json baseline is machine-specific;
        # on hardware much slower than the reference container the
        # absolute-ips gate would fail without any code regression.
        pytest.skip("REPRO_SKIP_PERF_SMOKE set (foreign/slow host)")
    env = dict(os.environ)
    src = os.path.join(REPO_ROOT, "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    # The regression gate must measure *cold* simulation: even with an
    # artifact store configured in the environment, --quick may not
    # consult or populate one (a cache hit would mask a regression).
    store = tmp_path / "quick-store"
    env["REPRO_STORE"] = str(store)
    proc = subprocess.run(
        [sys.executable, BENCH_PERF, "--quick"],
        capture_output=True, text=True, env=env, cwd=REPO_ROOT,
        timeout=240,
    )
    assert proc.returncode == 0, (
        "bench_perf --quick reported a perf regression:\n"
        + proc.stdout + proc.stderr
    )
    assert not store.exists(), (
        "the quick perf gate touched the artifact store; it must run cold"
    )
