"""Accelerator bit-identity: accel vs interp across the whole matrix.

The accelerator may only change *speed*.  These tests pin full
:class:`SimulationResult` equality — counters, engine stats, memory
stats — between the exec-compiled kernels and the interpreted paths for
every engine and width, through ``run_matrix`` (serial and pooled), and
through the artifact store (fingerprints must not depend on the mode,
so a store warmed by one mode must serve the other).
"""

import dataclasses

import pytest

from helpers import result_digest

from repro.experiments.configs import ARCHITECTURES, build_processor
from repro.experiments.runner import RunSpec, reset_program_cache, run_matrix
from repro.isa.workloads import prepare_program, ref_trace_seed
from repro.store.store import ArtifactStore

N_INSTR = 6000
WARMUP = 1500


def _run(program, arch, width, mode, n=N_INSTR, warmup=WARMUP):
    processor = build_processor(
        arch, program, width,
        benchmark="gzip", optimized=True,
        trace_seed=ref_trace_seed("gzip"),
        engine_mode=mode,
    )
    return processor.run(n, warmup=warmup)


@pytest.fixture(scope="module")
def gzip_small():
    return prepare_program("gzip", optimized=True, scale=0.35)


@pytest.mark.parametrize("arch", ARCHITECTURES)
@pytest.mark.parametrize("width", [2, 4, 8])
def test_engine_width_parity(gzip_small, arch, width):
    accel = _run(gzip_small, arch, width, "accel")
    interp = _run(gzip_small, arch, width, "interp")
    assert result_digest(accel) == result_digest(interp)


@pytest.mark.parametrize("arch", ARCHITECTURES)
def test_backend_state_parity(gzip_small, arch):
    """The published backend/walker/cursor state matches too, not just
    the result dataclass — inspection after a run must not depend on
    the mode."""
    states = []
    for mode in ("accel", "interp"):
        processor = build_processor(
            arch, gzip_small, 8, benchmark="gzip", optimized=True,
            trace_seed=ref_trace_seed("gzip"), engine_mode=mode,
        )
        result = processor.run(2500)
        backend = processor.backend
        walker = processor.cursor._walker
        states.append((
            result_digest(result),
            backend.instructions, backend.last_commit_cycle,
            backend.load_accesses, backend.store_accesses,
            processor.mem.dl1.accesses, processor.mem.dl1.misses,
            processor.mem.l2.accesses, processor.mem.l2.misses,
            walker.blocks_walked, walker.instructions_walked,
            processor.cursor.offset, processor.cursor.dyn.addr,
        ))
    assert states[0] == states[1]


def test_nondefault_machine_parity(gzip_small):
    """Ablation-style machines (odd line widths, deeper FTQs) compile
    their own kernels; parity must hold there too."""
    from dataclasses import replace

    from repro.common.params import CacheParams, default_machine

    base = default_machine(4)
    memory = replace(
        base.memory,
        il1=CacheParams(size_bytes=32 * 1024, assoc=2, line_bytes=64),
    )
    machine = replace(
        base,
        core=replace(base.core, ftq_entries=8),
        memory=memory,
    )
    results = {}
    for mode in ("accel", "interp"):
        processor = build_processor(
            "stream", gzip_small, 4, benchmark="gzip", optimized=True,
            trace_seed=ref_trace_seed("gzip"), machine=machine,
            engine_mode=mode,
        )
        results[mode] = result_digest(processor.run(4000, warmup=1000))
    assert results["accel"] == results["interp"]


def test_partial_matching_kernel_parity():
    """The trace engine's partial-matching branch is a distinct kernel
    variant ($PARTIAL_MATCHING folds True); pin it on a workload that
    actually produces partial hits."""
    program = prepare_program("vpr", optimized=False, scale=0.6)
    results = {}
    for mode in ("accel", "interp"):
        processor = build_processor(
            "trace", program, 8, benchmark="vpr", optimized=False,
            trace_seed=ref_trace_seed("vpr"),
            partial_matching=True, engine_mode=mode,
        )
        results[mode] = result_digest(processor.run(30_000))
    assert results["accel"] == results["interp"]
    # The branch must actually have been exercised, or this test pins
    # nothing: fail loudly if the workload stops producing partial hits.
    assert results["accel"]["engine_stats"].get("tc_partial_hits", 0) > 0


def test_nondefault_predictor_config_parity(gzip_small):
    """Engine-config knobs that fold into kernel constants (stream
    length-keyed path hashing) and ones that stay runtime (table
    geometry) both preserve parity."""
    from dataclasses import replace

    from repro.fetch.stream_predictor import StreamPredictorConfig

    config = replace(
        StreamPredictorConfig(),
        path_key_includes_length=True,
        first_entries=2048,
        second_entries=4096, second_assoc=4,
    )
    results = {}
    for mode in ("accel", "interp"):
        processor = build_processor(
            "stream", gzip_small, 8, benchmark="gzip", optimized=True,
            trace_seed=ref_trace_seed("gzip"),
            predictor_config=config, engine_mode=mode,
        )
        results[mode] = result_digest(processor.run(6000, warmup=1500))
    assert results["accel"] == results["interp"]


def _matrix_digest(result):
    return {
        spec: result_digest(res) for spec, res in result.results.items()
    }


@pytest.mark.parametrize("jobs", [1, 2])
def test_run_matrix_parity(jobs):
    kwargs = dict(
        benchmarks=["gzip"], widths=(2, 8), instructions=4000,
        scale=0.35,
    )
    accel = run_matrix(jobs=jobs, engine_mode="accel", **kwargs)
    interp = run_matrix(jobs=jobs, engine_mode="interp", **kwargs)
    assert _matrix_digest(accel) == _matrix_digest(interp)
    assert list(accel.results) == [
        RunSpec(arch, "gzip", width, optimized)
        for optimized in (False, True)
        for width in (2, 8)
        for arch in ARCHITECTURES
    ]


class TestStoreFingerprints:
    """Accel must never invalidate or fork the artifact cache."""

    KW = dict(benchmarks=["gzip"], widths=(8,), instructions=3000,
              scale=0.35)

    def test_modes_share_one_warm_store(self, tmp_path):
        """A store warmed by interp serves accel entirely from cache
        (same fingerprints), and the results are identical."""
        root = tmp_path / "store"
        reset_program_cache()
        cold = run_matrix(store=str(root), engine_mode="interp", **self.KW)
        results_before = ArtifactStore(str(root)).stats()["kinds"]["result"]
        progressed = []
        warm = run_matrix(store=str(root), engine_mode="accel",
                          progress=progressed.append, **self.KW)
        stats_after = ArtifactStore(str(root)).stats()["kinds"]["result"]
        assert _matrix_digest(cold) == _matrix_digest(warm)
        assert len(progressed) == len(cold.results)
        # Every accel cell resolved in the interp-warmed store: no new
        # result entries were written (fingerprints are mode-neutral).
        assert stats_after["entries"] == results_before["entries"]

    def test_fresh_stores_get_identical_fingerprints(self, tmp_path):
        import os

        fingerprints = {}
        for mode in ("accel", "interp"):
            root = tmp_path / mode
            reset_program_cache()
            run_matrix(store=str(root), engine_mode=mode, **self.KW)
            index = os.path.join(str(root), "index", "result")
            fingerprints[mode] = sorted(os.listdir(index))
        assert fingerprints["accel"] == fingerprints["interp"]
        assert fingerprints["accel"]  # something was actually stored
