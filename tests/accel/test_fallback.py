"""Accelerator failure handling: warn once, fall back, never differ.

Any failure to generate, compile or bind a kernel must (a) emit exactly
one RuntimeWarning per process, (b) leave the processor on the
interpreted path, and (c) leave results untouched.  Mode selection via
``engine_mode`` / ``$REPRO_ACCEL`` is covered here too.
"""

import warnings

import pytest

from helpers import result_digest

import repro.accel as accel
from repro.accel import codegen
from repro.experiments.configs import build_processor
from repro.isa.workloads import prepare_program, ref_trace_seed


@pytest.fixture(scope="module")
def gzip_tiny():
    return prepare_program("gzip", optimized=True, scale=0.3)


@pytest.fixture
def clean_accel_state():
    """Re-arm the warn-once flag and drop poisoned compile caches."""
    accel.reset_fallback_warning()
    codegen.clear_compile_cache()
    yield
    accel.reset_fallback_warning()
    codegen.clear_compile_cache()


def _run(program, mode=None, n=4000):
    processor = build_processor(
        "stream", program, 8, benchmark="gzip", optimized=True,
        trace_seed=ref_trace_seed("gzip"), engine_mode=mode,
    )
    return processor, processor.run(n, warmup=1000)


class TestForcedCodegenFailure:
    def test_single_warning_and_identical_results(
        self, gzip_tiny, clean_accel_state, monkeypatch
    ):
        _, reference = _run(gzip_tiny, mode="interp")

        def broken_render(*args, **kwargs):
            raise SyntaxError("injected codegen failure")

        # ``render`` is called inside codegen.compile_kernel, so this
        # breaks compilation for core and engine kernels alike without
        # having to chase the from-imported references.
        monkeypatch.setattr(codegen, "render", broken_render)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            p1, r1 = _run(gzip_tiny, mode="accel")
            p2, r2 = _run(gzip_tiny, mode="accel")
        fallbacks = [w for w in caught
                     if "falling back to the interpreted engine"
                     in str(w.message)]
        assert len(fallbacks) == 1  # warn once per process, not per run
        assert issubclass(fallbacks[0].category, RuntimeWarning)
        # Both processors run (and publish) on the interpreted path.
        assert p1._accel_run is None and p2._accel_run is None
        assert result_digest(r1) == result_digest(reference)
        assert result_digest(r2) == result_digest(reference)

    def test_bad_generated_source_falls_back(
        self, gzip_tiny, clean_accel_state, monkeypatch
    ):
        from repro.accel import core_gen

        _, reference = _run(gzip_tiny, mode="interp")
        monkeypatch.setattr(core_gen, "_TEMPLATE",
                            "def make_run(:\n    syntax error\n")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            processor, result = _run(gzip_tiny, mode="accel")
        assert any("falling back" in str(w.message) for w in caught)
        assert processor._accel_run is None
        assert result_digest(result) == result_digest(reference)


class TestModeSelection:
    def test_explicit_interp_builds_no_kernel(self, gzip_tiny):
        processor, _ = _run(gzip_tiny, mode="interp")
        assert processor.engine_mode == "interp"
        assert processor._accel_run is None

    def test_default_is_accel(self, gzip_tiny):
        processor, _ = _run(gzip_tiny, mode=None)
        assert processor.engine_mode == "accel"
        assert processor._accel_run is not None

    def test_env_disables(self, gzip_tiny, monkeypatch):
        monkeypatch.setenv(accel.ACCEL_ENV, "interp")
        processor, _ = _run(gzip_tiny, mode=None)
        assert processor.engine_mode == "interp"
        assert processor._accel_run is None

    def test_env_loses_to_explicit_mode(self, gzip_tiny, monkeypatch):
        monkeypatch.setenv(accel.ACCEL_ENV, "interp")
        processor, _ = _run(gzip_tiny, mode="accel")
        assert processor.engine_mode == "accel"

    def test_resolve_values(self):
        assert accel.resolve_engine_mode("accel") == "accel"
        assert accel.resolve_engine_mode("interp") == "interp"
        assert accel.resolve_engine_mode(True) == "accel"
        assert accel.resolve_engine_mode(False) == "interp"
        with pytest.raises(ValueError):
            accel.resolve_engine_mode("warp-speed")

    def test_reference_dispatch_bypasses_kernel(self, gzip_tiny):
        """The canonical-dispatch parity hook must stay interpreted."""
        processor, _ = _run(gzip_tiny, mode="accel", n=1000)
        p2 = build_processor(
            "stream", gzip_tiny, 8, benchmark="gzip", optimized=True,
            trace_seed=ref_trace_seed("gzip"), engine_mode="accel",
        )
        ref = p2.run(1000, _reference_dispatch=True)
        p3 = build_processor(
            "stream", gzip_tiny, 8, benchmark="gzip", optimized=True,
            trace_seed=ref_trace_seed("gzip"), engine_mode="interp",
        )
        assert result_digest(ref) == result_digest(p3.run(1000))


class TestUnknownEngineClass:
    def test_subclass_gets_interpreted_cycle(self, gzip_tiny):
        """A subclassed engine is not specialized (its overrides must
        keep working) but the core kernel still runs — and results
        match the fully interpreted path."""
        from repro.accel import engine_gen
        from repro.common.params import default_machine
        from repro.core.processor import Processor
        from repro.fetch.stream import StreamFetchEngine
        from repro.isa.trace import TraceWalker
        from repro.memory.hierarchy import MemoryHierarchy

        class TweakedStream(StreamFetchEngine):
            pass

        machine = default_machine(8)

        def build(mode):
            mem = MemoryHierarchy(machine.memory)
            engine = TweakedStream(gzip_tiny, machine, mem)
            walker = TraceWalker(gzip_tiny, ref_trace_seed("gzip"))
            return Processor(engine, walker, machine, mem,
                             benchmark="gzip", optimized=True,
                             engine_mode=mode)

        assert engine_gen.make_kernels(build("interp").engine) == (None,
                                                                   None)
        accel_p = build("accel")
        assert accel_p._accel_run is not None  # core kernel still binds
        interp_p = build("interp")
        assert result_digest(accel_p.run(3000)) == result_digest(
            interp_p.run(3000)
        )
