"""Codegen plumbing: kernel caching, source dumps, config keying."""

import pytest

from repro.accel import codegen, kernel_sources
from repro.accel.core_gen import run_kernel
from repro.accel.engine_gen import cycle_kernel, cycle_kernel_source
from repro.experiments.configs import ARCHITECTURES, build_processor
from repro.isa.workloads import prepare_program, ref_trace_seed


@pytest.fixture(scope="module")
def gzip_tiny():
    return prepare_program("gzip", optimized=True, scale=0.3)


def _processor(program, arch="ev8", width=8):
    return build_processor(
        arch, program, width, benchmark="gzip", optimized=True,
        trace_seed=ref_trace_seed("gzip"), engine_mode="interp",
    )


def test_compile_cache_shared_per_config(gzip_tiny):
    a = run_kernel(_processor(gzip_tiny))
    b = run_kernel(_processor(gzip_tiny))
    assert a is b  # one compilation per configuration
    narrow = run_kernel(_processor(gzip_tiny, width=2))
    assert narrow is not a  # different width folds different literals
    assert "$WIDTH" not in a.source  # constants were substituted


@pytest.mark.parametrize("arch", ARCHITECTURES)
def test_engine_kernels_compile_per_arch(gzip_tiny, arch):
    processor = _processor(gzip_tiny, arch=arch)
    kernel = cycle_kernel(processor.engine)
    assert kernel is not None
    source = cycle_kernel_source(processor.engine)
    compile(source, "<check>", "exec")  # stays valid stand-alone python


@pytest.mark.parametrize("arch", ARCHITECTURES)
def test_kernel_sources_dump(gzip_tiny, arch):
    """The debug dump returns the exact compilable source texts."""
    processor = _processor(gzip_tiny, arch=arch)
    sources = kernel_sources(processor)
    assert set(sources) == {"run", "cycle", "chains"}
    compile(sources["run"], "<run>", "exec")
    compile(sources["cycle"], "<cycle>", "exec")
    assert "def make_run" in sources["run"]
    assert "def make_kernels" in sources["cycle"]
    # Config constants are folded as literals, not looked up.
    assert "$" not in sources["run"]
    # The chain dump is the transition-follow block as spliced into the
    # run kernel (same text, same folded constants).
    assert sources["chains"].strip() in sources["run"]
    assert "$" not in sources["chains"]


def test_dump_cli_prints_source(gzip_tiny, capsys):
    from repro.accel.__main__ import main

    assert main(["stream", "8", "--which", "cycle"]) == 0
    out = capsys.readouterr().out
    assert "cycle kernel: stream width=8" in out
    assert "def make_kernels" in out


def test_dump_cli_chains_flag(gzip_tiny, capsys):
    from repro.accel.__main__ import main

    assert main(["ev8", "8", "--chains"]) == 0
    out = capsys.readouterr().out
    assert "chain follow: ev8 width=8" in out
    # The transition follow itself, with constants folded.
    assert "rec_map.get(levels)" in out
    assert "$" not in out.split("----\n", 1)[1]


def test_clear_compile_cache(gzip_tiny):
    first = run_kernel(_processor(gzip_tiny))
    codegen.clear_compile_cache()
    second = run_kernel(_processor(gzip_tiny))
    assert first is not second
    assert first.source == second.source
