"""The per-node health state machine and its circuit breaker."""

from __future__ import annotations

from repro.cluster.health import (
    DEAD,
    HEALTHY,
    PROBATION,
    SUSPECT,
    HealthPolicy,
    NodeHealth,
)
from repro.exec.policy import backoff_delay

POLICY = HealthPolicy(suspect_after=1, dead_after=3,
                      probe_backoff=0.5, probe_backoff_max=15.0)


def test_failures_walk_healthy_suspect_dead():
    node = NodeHealth("10.0.0.1:4000", POLICY)
    assert node.state == HEALTHY and node.usable()
    node.record_failure(now=100.0)
    assert node.state == SUSPECT
    assert node.usable()  # suspect nodes still take work
    node.record_failure(now=101.0)
    assert node.state == SUSPECT
    node.record_failure(now=102.0)
    assert node.state == DEAD
    assert not node.usable()
    assert node.breaker_trips == 1
    assert node.failures == 3


def test_success_resets_the_consecutive_count():
    node = NodeHealth("10.0.0.1:4000", POLICY)
    for _ in range(2):  # one short of dead_after
        node.record_failure(now=0.0)
    node.record_success()
    assert node.state == HEALTHY
    assert node.consecutive_failures == 0
    # The slate is clean: it takes dead_after fresh failures again.
    node.record_failure(now=0.0)
    node.record_failure(now=0.0)
    assert node.state == SUSPECT


def test_breaker_backoff_is_deterministic_and_grows():
    a = NodeHealth("10.0.0.1:4000", POLICY)
    b = NodeHealth("10.0.0.1:4000", POLICY)
    for node in (a, b):
        for _ in range(3):
            node.record_failure(now=1000.0)
    # Same address, same trip number -> bit-equal probe schedule
    # (sha256-derived jitter, no RNG).
    assert a.retry_at == b.retry_at
    expected = 1000.0 + backoff_delay(POLICY.breaker_policy(),
                                      "10.0.0.1:4000", 1)
    assert a.retry_at == expected
    # A second trip backs off further (attempt number advances).
    a.record_probe(now=2000.0, alive=True)
    a.record_failure(now=2000.0)  # probation failure re-trips
    assert a.breaker_trips == 2
    assert a.retry_at == 2000.0 + backoff_delay(
        POLICY.breaker_policy(), "10.0.0.1:4000", 2)
    # And a different address gets a different (deterministic) jitter.
    other = NodeHealth("10.0.0.2:4000", POLICY)
    for _ in range(3):
        other.record_failure(now=1000.0)
    assert other.retry_at != a.retry_at


def test_probe_success_walks_dead_to_probation_to_healthy():
    node = NodeHealth("n:1", POLICY)
    for _ in range(3):
        node.record_failure(now=0.0)
    assert node.state == DEAD
    assert node.due_for_probe(node.retry_at)
    assert not node.due_for_probe(node.retry_at - 0.001)
    node.record_probe(node.retry_at, alive=True)
    assert node.state == PROBATION
    assert node.usable()  # probation admits real work again
    node.record_success()
    assert node.state == HEALTHY


def test_probation_failure_retrips_immediately():
    node = NodeHealth("n:1", POLICY)
    for _ in range(3):
        node.record_failure(now=0.0)
    node.record_probe(10.0, alive=True)
    assert node.state == PROBATION
    # No suspect ramp for a node that just came back and failed.
    node.record_failure(now=10.0)
    assert node.state == DEAD
    assert node.breaker_trips == 2


def test_failed_probes_count_until_contact():
    node = NodeHealth("n:1", POLICY)
    for _ in range(3):
        node.record_failure(now=0.0)
    node.record_probe(5.0, alive=False)
    node.record_probe(9.0, alive=False)
    assert node.failed_probes == 2
    assert node.breaker_trips == 3  # each failed probe re-trips
    node.record_probe(20.0, alive=True)
    assert node.failed_probes == 0
    assert node.state == PROBATION


def test_stats_shape_matches_worker_surface():
    node = NodeHealth("n:1", POLICY)
    node.dispatched, node.completed, node.busy = 5, 4, 1
    stats = node.stats()
    assert stats == {
        "node": "n:1", "state": HEALTHY, "dispatched": 5,
        "completed": 4, "failures": 0, "breaker_trips": 0, "busy": 1,
    }
