"""ClusterPool dispatch, redispatch, budget, and degradation logic.

Driven through fake clients (no sockets, no subprocesses): every
failure path is scripted, so each test pins one piece of the pool's
contract.  The end-to-end daemon scenarios live in
``python -m repro.cluster selftest`` (see test_selftest.py).
"""

from __future__ import annotations

import pytest

from repro.cluster.health import DEAD, HEALTHY, SUSPECT, HealthPolicy
from repro.cluster.pool import ClusterPool
from repro.exec.policy import FaultPolicy, SweepError
from repro.exec.pool import Job, SerialPool
from repro.experiments.runner import RunSpec, run_matrix
from repro.serve import protocol
from repro.serve.client import ServeOverloaded, ServeUnavailable

FAST = FaultPolicy(retries=2, backoff=0.0)
FAST_HEALTH = HealthPolicy(suspect_after=1, dead_after=1,
                           probe_backoff=0.01, probe_backoff_factor=1.0,
                           probe_backoff_max=0.02, probe_jitter=0.0)

ONE_CELL = dict(benchmarks=("gzip",), widths=(8,), archs=("stream",),
                layouts=(True,), instructions=2000, warmup=500, scale=0.3)


@pytest.fixture(scope="module")
def encoded_result():
    """One real encoded result payload, shared by every fake cell."""
    base = run_matrix(**ONE_CELL)
    ((_, result),) = base.results.items()
    return protocol.encode_result(result)


class FakeClient:
    """Scripted stand-in for ServeClient: ``script`` lists per-call
    actions ("ok", "fail", "deadline", "garbage", or an exception to
    raise); ``default`` covers calls past the script's end."""

    def __init__(self, address, payload, script=(), default="ok",
                 ping_ok=True):
        self.address = address
        self.payload = payload
        self.script = list(script)
        self.default = default
        self.ping_ok = ping_ok
        self.queries = []
        self.pings = 0

    def ping(self):
        self.pings += 1
        if not self.ping_ok:
            raise ServeUnavailable(f"no daemon at {self.address}")
        return {"ok": True}

    def matrix(self, query):
        self.queries.append(query)
        action = self.script.pop(0) if self.script else self.default
        if isinstance(action, Exception):
            raise action
        cell = {
            "arch": query.archs[0], "benchmark": query.benchmarks[0],
            "width": query.widths[0], "optimized": query.layouts[0],
            "status": protocol.CELL_OK, "result": self.payload,
            "source": "computed",
        }
        if action == "fail":
            cell.update(status=protocol.CELL_FAILED, result=None,
                        error="remote boom")
        elif action == "deadline":
            cell.update(status=protocol.CELL_DEADLINE, result=None)
        elif action == "garbage":
            cell.update(result="!!! not base64 !!!")
        return {"ok": True, "cells": [cell]}


def _jobs(n):
    widths = (2, 4, 8, 16, 32)[:n]
    return [
        Job(spec, (spec, 3000, 1000, 0.3, None, None))
        for spec in (RunSpec("stream", "gzip", w, True) for w in widths)
    ]


def _pool(clients, **kwargs):
    by_address = {c.address: c for c in clients}
    kwargs.setdefault("policy", FAST)
    return ClusterPool(
        list(by_address), client_factory=by_address.__getitem__,
        node_slots=1, **kwargs,
    )


def _local_fn(spec, instructions, warmup, scale, program_key,
              engine_mode):
    return ("local", spec.width)


# ----------------------------------------------------------------------
def test_happy_path_spreads_work_and_keeps_wire_bytes(encoded_result):
    a = FakeClient("a:1", encoded_result)
    b = FakeClient("b:1", encoded_result)
    pool = _pool([a, b])
    jobs = _jobs(4)
    seen = []
    results = pool.run(_local_fn, jobs,
                       completed=lambda job, r: seen.append(job.key))
    assert len(results) == 4 and len(seen) == 4
    decoded = protocol.decode_result(encoded_result)
    assert all(r == decoded for r in results.values())
    # Raw wire bytes are retained per cell for verbatim store ingest,
    # and popped exactly once.
    import base64

    shipped = base64.b64decode(encoded_result)
    for job in jobs:
        assert pool.take_raw(job.key) == shipped
        assert pool.take_raw(job.key) is None
    assert set(pool.sources.values()) == {"computed"}
    # Both nodes did work and the stats surface agrees.
    stats = pool.worker_stats()
    assert stats["dispatched"] == 4 and stats["completed"] == 4
    assert sorted(w["completed"] for w in stats["workers"]) == [2, 2]
    assert all(w["state"] == HEALTHY for w in stats["workers"])


def test_transport_failures_redispatch_without_cell_budget(
        encoded_result):
    # retries=0: if redispatch consumed the cell's budget, every cell
    # the sick node touched would fail the sweep.
    sick = FakeClient("sick:1", encoded_result,
                      default=ServeUnavailable("connection refused"))
    ok = FakeClient("ok:1", encoded_result)
    pool = _pool([sick, ok], policy=FaultPolicy(retries=0, backoff=0.0))
    jobs = _jobs(4)
    results = pool.run(_local_fn, jobs)
    assert len(results) == 4
    assert pool.redispatches >= 1
    assert all(job.attempt == 0 for job in jobs)  # no budget consumed
    nodes = {n.address: n for n in pool.nodes}
    assert nodes["sick:1"].state in (SUSPECT, DEAD)
    assert nodes["sick:1"].completed == 0
    assert nodes["ok:1"].completed == 4


def test_remote_cell_failures_consume_the_cell_budget(encoded_result):
    node = FakeClient("a:1", encoded_result, default="fail")
    pool = _pool([node], policy=FaultPolicy(retries=1, backoff=0.0))
    with pytest.raises(SweepError) as excinfo:
        pool.run(_local_fn, _jobs(1))
    (messages,) = excinfo.value.failures.values()
    assert len(messages) == 2  # initial + 1 retry
    assert all("remote: remote boom" in m for m in messages)
    # The *node* answered correctly every time: it stays healthy.
    assert pool.nodes[0].state == HEALTHY
    assert pool.degraded_local is False


def test_deadline_propagates_and_retry_prefers_another_node(
        encoded_result):
    slow = FakeClient("slow:1", encoded_result, script=["deadline"])
    fast = FakeClient("fast:1", encoded_result)
    pool = _pool([slow, fast],
                 policy=FaultPolicy(timeout=7.5, retries=2, backoff=0.0))
    results = pool.run(_local_fn, _jobs(1))
    assert len(results) == 1
    # The FaultPolicy timeout rode the wire as the serve deadline.
    assert slow.queries[0].deadline == 7.5
    # The retry went to the other node, not back to the slow one.
    assert len(slow.queries) == 1 and len(fast.queries) == 1


def test_overloaded_node_requeues_and_counts_against_health(
        encoded_result):
    node = FakeClient("a:1", encoded_result,
                      script=[ServeOverloaded("queue full")])
    pool = _pool([node])
    results = pool.run(_local_fn, _jobs(1))
    assert len(results) == 1
    assert pool.redispatches == 1
    assert pool.nodes[0].failures == 1


def test_undecodable_payload_poisons_the_node_not_the_cell(
        encoded_result):
    # A daemon of a different code version answers garbage payloads:
    # that cannot consume the cell's budget (retries=0 proves it).
    stale = FakeClient("stale:1", encoded_result, default="garbage")
    good = FakeClient("good:1", encoded_result)
    pool = _pool([stale, good],
                 policy=FaultPolicy(retries=0, backoff=0.0))
    results = pool.run(_local_fn, _jobs(1))
    assert len(results) == 1
    assert pool.nodes[0].failures >= 1
    assert good.queries  # the cell landed on the healthy node


def test_whole_fleet_down_degrades_to_local_pool(encoded_result):
    down = ServeUnavailable("connection refused")
    a = FakeClient("a:1", encoded_result, default=down, ping_ok=False)
    b = FakeClient("b:1", encoded_result, default=down, ping_ok=False)
    pool = _pool([a, b], health_policy=FAST_HEALTH, probe_rounds=1,
                 fallback_factory=lambda: SerialPool(policy=FAST))
    jobs = _jobs(2)
    seen = []
    with pytest.warns(RuntimeWarning, match="no fleet node reachable"):
        results = pool.run(_local_fn, jobs,
                           completed=lambda job, r: seen.append(job.key))
    assert results == {job.key: ("local", job.key.width)
                       for job in jobs}
    assert len(seen) == 2  # completed fired for fallback cells too
    assert pool.degraded_local
    assert all(node.state == DEAD for node in pool.nodes)
    assert all(pool.sources[job.key] == "local" for job in jobs)
    assert all(pool.take_raw(job.key) is None for job in jobs)
    # Local attempts count toward the pool-wide totals.
    assert pool.jobs_completed == 2


def test_heartbeat_reports_and_updates_state(encoded_result):
    up = FakeClient("up:1", encoded_result)
    down = FakeClient("down:1", encoded_result, ping_ok=False)
    pool = _pool([up, down], health_policy=FAST_HEALTH)
    assert pool.heartbeat() == {"up:1": HEALTHY, "down:1": DEAD}
    assert pool.nodes[1].breaker_trips == 1
    down.ping_ok = True  # the node came back: probation via heartbeat
    assert pool.heartbeat() == {"up:1": HEALTHY, "down:1": "probation"}


# ----------------------------------------------------------------------
def test_run_matrix_cluster_ingests_wire_bytes_into_store(
        tmp_path, encoded_result):
    """run_matrix(cluster=...) end to end against in-process 'nodes'
    that really simulate: results bit-identical and the client store
    holds the daemon's exact bytes (all hits on the next run)."""
    from repro.experiments.runner import _run_cell_worker
    from repro.store.cache import ArtifactCache

    class ServingClient(FakeClient):
        def matrix(self, query):
            self.queries.append(query)
            spec = RunSpec(query.archs[0], query.benchmarks[0],
                           query.widths[0], query.layouts[0])
            result = _run_cell_worker(
                spec, query.instructions, query.warmup, query.scale,
                None, query.engine_mode,
            )
            cell = dict(protocol.spec_to_wire(spec),
                        status=protocol.CELL_OK,
                        result=protocol.encode_result(result),
                        source="computed")
            return {"ok": True, "cells": [cell]}

    matrix = dict(ONE_CELL, widths=(4, 8))
    base = run_matrix(**matrix)
    pool = _pool([ServingClient("a:1", None),
                  ServingClient("b:1", None)])
    out = run_matrix(cluster=pool, store=str(tmp_path / "store"),
                     **matrix)
    assert out.results == base.results
    assert set(pool.sources.values()) == {"computed"}
    # The runner drained the raw bytes into the store...
    assert all(pool.take_raw(key) is None for key in base.results)
    # ...and a fresh local run is then pure store hits.
    arts = ArtifactCache(str(tmp_path / "store"))
    again = run_matrix(store=arts, **matrix)
    assert again.results == base.results
    assert arts.hits["result"] == 2
