"""Tests for the BTB and the return address stack."""

import pytest

from repro.branch.btb import BranchTargetBuffer
from repro.branch.ras import ReturnAddressStack
from repro.common.types import BranchKind


class TestBTB:
    def test_miss_then_hit_after_taken(self):
        btb = BranchTargetBuffer(64, 4)
        assert btb.lookup(0x1000) is None
        btb.update(0x1000, 0x2000, BranchKind.COND, taken=True)
        entry = btb.lookup(0x1000)
        assert entry is not None
        assert entry.target == 0x2000
        assert entry.kind is BranchKind.COND

    def test_never_allocates_on_not_taken(self):
        """The Calder–Grunwald policy the paper adopts."""
        btb = BranchTargetBuffer(64, 4)
        for _ in range(10):
            btb.update(0x1000, 0, BranchKind.COND, taken=False)
        assert btb.lookup(0x1000) is None

    def test_direction_counter_trains(self):
        btb = BranchTargetBuffer(64, 4)
        btb.update(0x1000, 0x2000, BranchKind.COND, taken=True)
        entry = btb.lookup(0x1000)
        assert entry.predict_taken
        btb.update(0x1000, 0x2000, BranchKind.COND, taken=False)
        btb.update(0x1000, 0x2000, BranchKind.COND, taken=False)
        assert not btb.lookup(0x1000).predict_taken

    def test_lru_eviction_within_set(self):
        btb = BranchTargetBuffer(8, 2)  # 4 sets, 2 ways
        set_stride = 4 * 4  # num_sets * instruction bytes
        a, b, c = 0x1000, 0x1000 + set_stride, 0x1000 + 2 * set_stride
        btb.update(a, 1, BranchKind.JUMP, True)
        btb.update(b, 2, BranchKind.JUMP, True)
        btb.lookup(a)                      # touch a
        btb.update(c, 3, BranchKind.JUMP, True)  # evicts b
        assert btb.lookup(a) is not None
        assert btb.lookup(b) is None

    def test_target_update_on_retaken(self):
        btb = BranchTargetBuffer(64, 4)
        btb.update(0x1000, 0x2000, BranchKind.IND, taken=True)
        btb.update(0x1000, 0x3000, BranchKind.IND, taken=True)
        assert btb.lookup(0x1000).target == 0x3000

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            BranchTargetBuffer(10, 4)


class TestRAS:
    def test_push_pop(self):
        ras = ReturnAddressStack(8)
        ras.push(0x100)
        ras.push(0x200)
        assert ras.pop() == 0x200
        assert ras.pop() == 0x100

    def test_underflow_returns_something(self):
        ras = ReturnAddressStack(4)
        assert isinstance(ras.pop(), int)
        assert ras.underflows == 1

    def test_wraps_at_depth(self):
        ras = ReturnAddressStack(2)
        ras.push(1)
        ras.push(2)
        ras.push(3)  # overwrites the slot holding 1
        assert ras.pop() == 3
        assert ras.pop() == 2

    def test_checkpoint_restore_undoes_younger_ops(self):
        """§3.2: shadow top-of-stack + index repair.

        The shadow copy restores the stack pointer and the *top* entry.
        Wrong-path pushes that clobbered deeper slots stay corrupted —
        that is the documented cost of the single-shadow scheme (deeper
        repair would need a full-stack checkpoint).
        """
        ras = ReturnAddressStack(8)
        ras.push(0x100)
        ras.push(0x200)
        ckpt = ras.checkpoint()
        # Wrong-path speculation: one pop, one garbage push.
        ras.pop()
        ras.push(0xBAD)
        ras.restore(ckpt)
        assert ras.pop() == 0x200
        assert ras.pop() == 0x100

    def test_checkpoint_cannot_repair_deep_clobber(self):
        """Authentic limitation: slots below the shadow top stay dirty."""
        ras = ReturnAddressStack(8)
        ras.push(0x100)
        ras.push(0x200)
        ckpt = ras.checkpoint()
        ras.pop()
        ras.pop()
        ras.push(0xBAD)  # overwrites the slot that held 0x100
        ras.restore(ckpt)
        assert ras.pop() == 0x200  # shadow top repaired
        assert ras.pop() == 0xBAD  # deeper slot stays corrupted

    def test_checkpoint_restores_clobbered_top(self):
        ras = ReturnAddressStack(2)
        ras.push(0x100)
        ras.push(0x200)
        ckpt = ras.checkpoint()
        ras.pop()
        ras.pop()
        ras.push(0xAAA)
        ras.push(0xBBB)  # clobbers the slot under the checkpoint top
        ras.restore(ckpt)
        assert ras.pop() == 0x200

    def test_top_without_pop(self):
        ras = ReturnAddressStack(8)
        ras.push(0x42)
        assert ras.top() == 0x42
        assert ras.top() == 0x42  # unchanged
