"""Tests for the 2bcgskew and perceptron direction predictors.

Branches execute in a fixed loop-body order (realistic control flow);
random interleavings would turn global history into noise and tell us
nothing about the predictors.
"""

import random

import pytest

from repro.branch.history import HistoryRegister
from repro.branch.perceptron import PerceptronConfig, PerceptronPredictor
from repro.branch.twobcgskew import GskewConfig, TwoBcGskew


def run_loop_body(pred, branch_fns, iterations=800, seed=3):
    """Execute `branch_fns` (pc -> outcome fn) round-robin; return accuracy."""
    rng = random.Random(seed)
    hist = HistoryRegister(40)
    state = {}
    correct = total = 0
    for it in range(iterations):
        for pc, fn in branch_fns:
            actual = fn(it, rng, state, hist)
            taken, info = pred.predict(pc, hist.spec)
            total += 1
            correct += taken == actual
            pred.update(info, actual)
            hist.spec_push(actual)
            hist.commit_push(actual)
    return correct / total


def always_taken(it, rng, state, hist):
    return True


def biased(p):
    def fn(it, rng, state, hist):
        return rng.random() < p
    return fn


def loop_exit(trip):
    def fn(it, rng, state, hist):
        return (it % trip) != trip - 1
    return fn


def correlated(mask):
    def fn(it, rng, state, hist):
        return bool(bin(hist.commit & mask).count("1") & 1)
    return fn


BODY = [
    (0x1000, always_taken),
    (0x1010, biased(0.95)),
    (0x1020, loop_exit(5)),
    (0x1030, correlated(0b110)),
]


class TestTwoBcGskew:
    def test_learns_structured_body(self):
        acc = run_loop_body(TwoBcGskew(), BODY)
        assert acc > 0.9

    def test_near_perfect_on_static_branches(self):
        acc = run_loop_body(TwoBcGskew(), [(0x1000, always_taken)],
                            iterations=2000)
        assert acc > 0.995  # only cold-start mispredictions

    def test_counts_short_loops(self):
        acc = run_loop_body(TwoBcGskew(), [(0x2000, loop_exit(4))],
                            iterations=2000)
        assert acc > 0.95

    def test_small_tables_alias(self):
        """Shrinking the banks must hurt on a large static branch set."""
        big_body = [
            (0x1000 + i * 64, loop_exit(3 + i % 5)) for i in range(64)
        ]
        small = run_loop_body(
            TwoBcGskew(GskewConfig(bank_entries=64)), big_body,
            iterations=300,
        )
        large = run_loop_body(TwoBcGskew(), big_body, iterations=300)
        assert large > small


class TestPerceptron:
    def test_learns_structured_body(self):
        acc = run_loop_body(PerceptronPredictor(), BODY)
        assert acc > 0.93

    def test_counts_loops_via_local_history(self):
        acc = run_loop_body(PerceptronPredictor(), [(0x2000, loop_exit(6))],
                            iterations=2000)
        assert acc > 0.97

    def test_linearly_separable_correlation(self):
        acc = run_loop_body(
            PerceptronPredictor(), [(0x3000, correlated(0b1))],
            iterations=2000,
        )
        assert acc > 0.97

    def test_weights_saturate(self):
        pred = PerceptronPredictor()
        hist = HistoryRegister(40)
        for _ in range(1000):
            _, info = pred.predict(0x4000, hist.spec)
            pred.update(info, True)
            hist.spec_push(True)
        pidx = (0x4000 >> 2) & (pred.config.num_perceptrons - 1)
        assert all(
            pred.config.weight_min <= w <= pred.config.weight_max
            for w in pred._weights[pidx]
        )

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            PerceptronPredictor(PerceptronConfig(num_perceptrons=300))

    def test_threshold_formula(self):
        cfg = PerceptronConfig()
        assert cfg.threshold == int(1.93 * cfg.num_inputs + 14)


class TestComparative:
    def test_both_beat_static_on_correlated(self):
        """History predictors must beat the 50% static floor."""
        body = [(0x5000, correlated(0b101))]
        for pred in (TwoBcGskew(), PerceptronPredictor()):
            assert run_loop_body(pred, body, iterations=1500) > 0.9
