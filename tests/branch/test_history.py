"""Tests for history registers and their recovery discipline."""

import pytest

from repro.branch.history import HistoryRegister, PathHistory


class TestHistoryRegister:
    def test_push_shifts(self):
        h = HistoryRegister(8)
        h.spec_push(True)
        h.spec_push(False)
        h.spec_push(True)
        assert h.spec == 0b101

    def test_bounded_width(self):
        h = HistoryRegister(4)
        for _ in range(10):
            h.spec_push(True)
        assert h.spec == 0b1111

    def test_commit_independent(self):
        h = HistoryRegister(8)
        h.spec_push(True)
        assert h.commit == 0
        h.commit_push(True)
        assert h.commit == 1

    def test_recover_copies_commit(self):
        h = HistoryRegister(8)
        h.commit_push(True)
        h.spec_push(False)
        h.spec_push(False)
        h.recover()
        assert h.spec == h.commit == 0b1

    def test_low_bits(self):
        h = HistoryRegister(16)
        for bit in (True, False, True, True):
            h.spec_push(bit)
        assert h.low_bits(3) == 0b011

    def test_rejects_zero_width(self):
        with pytest.raises(ValueError):
            HistoryRegister(0)


class TestPathHistory:
    def test_push_order_oldest_first(self):
        p = PathHistory(4)
        for addr in (0x10, 0x20, 0x30):
            p.spec_push(addr)
        assert list(p.spec_view()) == [0x10, 0x20, 0x30]

    def test_depth_bounded(self):
        p = PathHistory(3)
        for addr in range(10):
            p.spec_push(addr)
        assert list(p.spec_view()) == [7, 8, 9]

    def test_recover(self):
        p = PathHistory(4)
        p.commit_push(0x10)
        p.spec_push(0x10)
        p.spec_push(0xBAD)
        p.recover()
        assert list(p.spec_view()) == [0x10]

    def test_recover_is_a_copy(self):
        p = PathHistory(4)
        p.commit_push(0x10)
        p.recover()
        p.spec_push(0x20)
        assert list(p.commit_view()) == [0x10]

    def test_rejects_zero_depth(self):
        with pytest.raises(ValueError):
            PathHistory(0)
