"""Tests for two-bit counters and counter tables."""

import pytest
from hypothesis import given, strategies as st

from repro.branch.bimodal import CounterTable, TwoBitCounter


class TestTwoBitCounter:
    def test_saturates_up(self):
        c = TwoBitCounter(3)
        c.update(True)
        assert c.value == 3

    def test_saturates_down(self):
        c = TwoBitCounter(0)
        c.update(False)
        assert c.value == 0

    def test_hysteresis(self):
        c = TwoBitCounter(0)
        c.update(True)   # 1 — still predicts NT
        assert not c.taken
        c.update(True)   # 2 — now predicts taken
        assert c.taken
        c.update(False)  # 3->... 2->1: one NT does not flip a strong state
        assert not c.taken

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            TwoBitCounter(4)


class TestCounterTable:
    def test_learns_direction(self):
        t = CounterTable(16)
        for _ in range(4):
            t.update(5, True)
        assert t.predict(5)

    def test_index_mask_wraps(self):
        t = CounterTable(16)
        t.update(5, True)
        t.update(5 + 16, True)
        assert t.counter(5) == 3  # same physical counter

    def test_strengthen_only_reinforces(self):
        t = CounterTable(16, init=1)  # weakly NT
        t.strengthen(3, True)         # disagrees -> no change
        assert t.counter(3) == 1
        t.strengthen(3, False)        # agrees -> strengthen towards 0
        assert t.counter(3) == 0

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            CounterTable(12)

    @given(st.lists(st.tuples(st.integers(0, 63), st.booleans()),
                    max_size=300))
    def test_property_counters_in_range(self, updates):
        t = CounterTable(64)
        for index, taken in updates:
            t.update(index, taken)
            assert 0 <= t.counter(index) <= 3
