"""Unit tests for the shared warn-once helper (repro.common.warnonce)."""

from __future__ import annotations

import warnings

import pytest

from repro import obs
from repro.common import reset_warn_once, warn_once, warned
from repro.obs.events import FlightRecorder

KEY = "test.warnonce"


@pytest.fixture(autouse=True)
def _clean_key():
    reset_warn_once(KEY)
    yield
    reset_warn_once(KEY)


def test_warns_once_per_key_but_counts_every_call():
    before = obs.WARNINGS.value(key=KEY)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        assert warn_once(KEY, "first notice") is True
        assert warn_once(KEY, "second notice") is False
        assert warn_once(KEY, "third notice") is False
    assert len(caught) == 1
    assert "first notice" in str(caught[0].message)
    assert issubclass(caught[0].category, RuntimeWarning)
    # The metric sees the full history, not just the emitted warning.
    assert obs.WARNINGS.value(key=KEY) - before == 3
    assert warned(KEY)


def test_every_call_records_an_obs_event(tmp_path):
    rec = obs.attach(FlightRecorder(str(tmp_path / "w.events")))
    try:
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            warn_once(KEY, "boom")
            warn_once(KEY, "boom again")
    finally:
        obs.detach(rec)
    events = [e for e in rec.events() if e["ev"] == "warning"]
    assert [e["message"] for e in events] == ["boom", "boom again"]
    assert all(e["key"] == KEY for e in events)


def test_reset_rearms():
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        warn_once(KEY, "one")
        reset_warn_once(KEY)
        warn_once(KEY, "two")
    assert [str(w.message) for w in caught] == ["one", "two"]


def test_custom_category():
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        warn_once(KEY, "deprecated", category=DeprecationWarning)
    assert issubclass(caught[0].category, DeprecationWarning)


def test_private_registry_scopes_onceness():
    pool_a: set = set()
    pool_b: set = set()
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        assert warn_once(KEY, "a", registry=pool_a) is True
        assert warn_once(KEY, "a again", registry=pool_a) is False
        # A second instance with its own registry warns independently.
        assert warn_once(KEY, "b", registry=pool_b) is True
    assert [str(w.message) for w in caught] == ["a", "b"]
    assert warned(KEY, registry=pool_a)
    assert warned(KEY, registry=pool_b)
    assert not warned(KEY)  # the global registry never saw it
