"""Serve-layer observability: the metrics op, status extensions, and
the daemon's own flight recorder — all against an in-process server."""

from __future__ import annotations

import os

import pytest

from repro import obs
from repro.experiments.runner import run_matrix
from repro.serve import ExperimentServer, ServeClient

KW = dict(benchmarks=("gzip",), widths=(8,), archs=("stream",),
          layouts=(True,), instructions=3000, warmup=1000, scale=0.3)


@pytest.fixture
def served(tmp_path):
    with ExperimentServer(store_root=str(tmp_path / "store"),
                          max_workers=1, use_fork_pool=False) as server:
        yield server, ServeClient(*server.address)


def test_metrics_op_serves_prometheus_text(served):
    server, client = served
    # The registry is process-global; zero it so the assertions below
    # see exactly this test's traffic regardless of suite order.
    obs.reset_metrics()
    base = run_matrix(**KW)
    got = client.run_matrix(**KW)
    assert got.results == base.results

    text = client.metrics()
    # Serve-family counters with real samples from the request above.
    assert 'repro_serve_requests_total{op="matrix"} 1' in text
    assert 'repro_serve_cells_total{outcome="computed"} 1' in text
    assert "repro_serve_admissions_total 1" in text
    # Store and exec families are exposed from the same registry (the
    # acceptance bar: one scrape covers every layer).
    assert "# TYPE repro_store_misses_total counter" in text
    assert "# TYPE repro_exec_jobs_total counter" in text
    assert "# TYPE repro_serve_request_seconds histogram" in text
    assert "repro_serve_request_seconds_count 1" in text

    ping_then = client.ping()
    assert ping_then["ok"]
    text = client.metrics()
    assert 'repro_serve_requests_total{op="ping"} 1' in text


def test_status_reports_uptime_queue_and_in_flight(served):
    server, client = served
    obs.reset_metrics()
    client.run_matrix(**KW)
    status = client.status()
    assert status["uptime"] > 0
    assert status["queue"]["backlog"] == 0
    assert status["cells"]["in_flight"] == 0
    assert status["cells"]["computed"] == 1


def test_daemon_keeps_its_own_flight_recorder(tmp_path):
    root = str(tmp_path / "store")
    with ExperimentServer(store_root=root, max_workers=1,
                          use_fork_pool=False) as server:
        client = ServeClient(*server.address)
        base = run_matrix(**KW)
        got = client.run_matrix(**KW)
        assert got.results == base.results
    events = obs.read_events(os.path.join(root, "runs", "daemon.events"))
    kinds = {e["ev"] for e in events}
    assert "admit" in kinds
    assert "drained" in kinds
    (admit,) = [e for e in events if e["ev"] == "admit"]
    assert admit["cells"] == 1


def test_served_results_identical_with_obs_disabled(tmp_path, monkeypatch):
    base = run_matrix(**KW)
    monkeypatch.setenv(obs.OBS_ENV, "0")
    root = str(tmp_path / "store")
    with ExperimentServer(store_root=root, max_workers=1,
                          use_fork_pool=False) as server:
        client = ServeClient(*server.address)
        got = client.run_matrix(**KW)
    assert got.results == base.results
    # Disabled: the daemon attached no recorder at all.
    assert not os.path.exists(os.path.join(root, "runs", "daemon.events"))
