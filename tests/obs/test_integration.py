"""End-to-end observability: bit-identity, sweep recorders, serve.

The layer's core contract — observability is a window, never an input
— is asserted here across every execution path: serial, pooled,
accel/interp, and served.  The flight recorder's acceptance case (a
SIGKILLed worker surfaces as typed events next to the sweep journal)
rides the same fault harness as the resilience tests.
"""

from __future__ import annotations

import os

import pytest

from repro import obs
from repro.exec import FaultPolicy, FaultSpec
from repro.exec.faults import active_plan
from repro.experiments.runner import run_matrix
from repro.store.store import ArtifactStore

KW = dict(
    benchmarks=("gzip",),
    widths=(8,),
    archs=("stream", "ev8"),
    layouts=(True,),
    instructions=3000,
    warmup=1000,
    scale=0.3,
)
FAST = FaultPolicy(retries=2, backoff=0.0)


@pytest.fixture(scope="module")
def baseline():
    return run_matrix(**KW)


def _events_file(root: str) -> str:
    runs = os.path.join(root, "runs")
    (path,) = [
        os.path.join(runs, name)
        for name in sorted(os.listdir(runs))
        if name.endswith(".events")
    ]
    return path


# ----------------------------------------------------------------------
# bit-identity: recording on/off, every execution path
# ----------------------------------------------------------------------
def test_store_run_bit_identical_with_obs_disabled(
    tmp_path, baseline, monkeypatch
):
    recorded = run_matrix(**KW, store=str(tmp_path / "on"))
    assert recorded.results == baseline.results
    assert os.path.exists(_events_file(str(tmp_path / "on")))

    monkeypatch.setenv(obs.OBS_ENV, "0")
    silent = run_matrix(**KW, store=str(tmp_path / "off"))
    assert silent.results == baseline.results
    # Disabled means no recorder file at all, not an empty one.
    runs = os.path.join(str(tmp_path / "off"), "runs")
    assert not [n for n in os.listdir(runs) if n.endswith(".events")]


def test_pooled_run_bit_identical_and_recorded(tmp_path, baseline):
    root = str(tmp_path / "store")
    got = run_matrix(**KW, jobs=2, store=root, fault_policy=FAST)
    assert got.results == baseline.results
    events = obs.read_events(_events_file(root))
    kinds = {e["ev"] for e in events}
    assert {"sweep_begin", "sweep_end"} <= kinds
    # Worker cell events crossed the fork boundary into the same file.
    cells = [e for e in events if e["ev"] == "cell"]
    assert len(cells) == len(KW["archs"])
    for cell in cells:
        assert cell["instructions"] > 0
        assert cell["wall"] > 0


def test_interp_run_bit_identical_with_recorder(tmp_path, baseline):
    recorder = obs.sweep_recorder(str(tmp_path / "interp.events"))
    try:
        got = run_matrix(**KW, engine_mode="interp")
    finally:
        obs.detach(recorder)
    assert got.results == baseline.results
    cells = [e for e in recorder.events() if e["ev"] == "cell"]
    assert {c["engine"] for c in cells} == {"interp"}


def test_sweep_recorder_events_and_metrics(tmp_path, baseline):
    root = str(tmp_path / "store")
    before = obs.CORE_CELLS.total()
    got = run_matrix(**KW, store=root)
    assert got.results == baseline.results
    assert obs.CORE_CELLS.total() - before == len(KW["archs"])

    events = obs.read_events(_events_file(root))
    assert events[0]["ev"] == "sweep_begin"
    assert events[0]["cells"] == len(KW["archs"])
    assert events[-1]["ev"] == "sweep_end"
    assert events[-1]["completed"] == len(KW["archs"])

    # A warm rerun attaches a fresh recorder on the same file and logs
    # an all-cached sweep (no cell events this time).
    again = run_matrix(**KW, store=root)
    assert again.results == baseline.results
    events = obs.read_events(_events_file(root))
    begins = [e for e in events if e["ev"] == "sweep_begin"]
    assert len(begins) == 2
    assert begins[-1]["cached"] == len(KW["archs"])


# ----------------------------------------------------------------------
# faults: the SIGKILL acceptance case
# ----------------------------------------------------------------------
@pytest.mark.faults(timeout=300)
def test_killed_worker_surfaces_in_flight_recorder(tmp_path, baseline):
    root = str(tmp_path / "store")
    with active_plan(FaultSpec("kill", match="ev8", times=1)):
        got = run_matrix(**KW, jobs=2, store=root, fault_policy=FAST)
    assert got.results == baseline.results
    events = obs.read_events(_events_file(root))
    kinds = {e["ev"] for e in events}
    assert "worker_crash" in kinds
    assert "retry" in kinds
    (crash,) = [e for e in events if e["ev"] == "worker_crash"]
    assert crash["exitcode"] == -9
    retries = [e for e in events if e["ev"] == "retry"]
    assert any("ev8" in str(e["cell"]) for e in retries)


# ----------------------------------------------------------------------
# gc: recorder files ride with their journal
# ----------------------------------------------------------------------
def test_gc_collects_events_with_their_journal(tmp_path):
    root = str(tmp_path / "store")
    run_matrix(**KW, store=root)
    store = ArtifactStore(root)
    stats = store.stats()
    assert stats["journals"] == 1
    assert stats["journals_complete"] == 1
    assert stats["journal_oldest_seconds"] >= 0.0
    assert os.path.exists(_events_file(root))

    report = store.gc(journal_max_age=0.0, dry_run=True)
    assert report["journals_removed"] == 1
    assert report["events_removed"] == 1
    assert os.path.exists(_events_file(root))  # dry run deletes nothing

    report = store.gc(journal_max_age=0.0)
    assert report["events_removed"] == 1
    runs = os.path.join(root, "runs")
    assert not [n for n in os.listdir(runs) if n.endswith(".events")]
