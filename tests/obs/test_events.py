"""Unit tests for the flight recorder (repro.obs.events)."""

from __future__ import annotations

import json
import os

from repro import obs
from repro.obs.events import FlightRecorder, read_events, tail_events


def _ev(i: int) -> dict:
    return {"ev": "tick", "ts": 1000.0 + i, "n": i}


def test_record_roundtrip_memory_and_disk(tmp_path):
    path = str(tmp_path / "r.events")
    rec = FlightRecorder(path)
    for i in range(5):
        rec.record(_ev(i))
    assert len(rec) == 5
    assert [e["n"] for e in rec.events()] == list(range(5))
    assert [e["n"] for e in read_events(path)] == list(range(5))
    assert not rec.degraded


def test_memory_ring_is_bounded(tmp_path):
    rec = FlightRecorder(str(tmp_path / "r.events"), capacity=3)
    for i in range(10):
        rec.record(_ev(i))
    assert [e["n"] for e in rec.events()] == [7, 8, 9]
    # The file keeps everything until max_bytes forces rotation.
    assert len(read_events(str(tmp_path / "r.events"))) == 10


def test_reader_tolerates_torn_tail_and_alien_lines(tmp_path):
    path = tmp_path / "torn.events"
    lines = [json.dumps(_ev(i)) for i in range(3)]
    blob = "\n".join(lines) + "\n"
    blob += "not json at all\n"                  # alien line
    blob += '["a", "json", "array"]\n'           # non-object
    blob += '{"no_ev_field": 1}\n'               # object without "ev"
    blob += json.dumps(_ev(3))[:10]              # torn final line
    path.write_text(blob)
    events = read_events(str(path))
    assert [e["n"] for e in events] == [0, 1, 2]


def test_read_events_missing_file_is_empty(tmp_path):
    assert read_events(str(tmp_path / "absent.events")) == []


def test_tail_events(tmp_path):
    path = str(tmp_path / "t.events")
    rec = FlightRecorder(path)
    for i in range(6):
        rec.record(_ev(i))
    assert [e["n"] for e in tail_events(path, 2)] == [4, 5]
    assert tail_events(path, 0) == []


def test_on_disk_ring_rotates_at_max_bytes(tmp_path):
    path = str(tmp_path / "ring.events")
    rec = FlightRecorder(path, capacity=5, max_bytes=512)
    for i in range(200):
        rec.record(_ev(i))
    assert not rec.degraded
    size = os.path.getsize(path)
    # Bounded: the file never grows past max_bytes plus one line.
    assert size <= 512 + 80
    events = read_events(path)
    # The newest event always survives rotation.
    assert events[-1]["n"] == 199


def test_unwritable_path_degrades_to_memory_only(tmp_path):
    missing_dir = tmp_path / "no" / "such" / "dir"
    rec = FlightRecorder(str(missing_dir / "r.events"))
    rec.record(_ev(0))
    rec.record(_ev(1))
    assert rec.degraded
    assert len(rec) == 2  # the in-memory ring still works


def test_unserializable_event_is_skipped_on_disk(tmp_path):
    path = str(tmp_path / "r.events")
    rec = FlightRecorder(path)
    rec.record({"ev": "odd", "obj": object()})  # default=str handles it
    rec.record(_ev(1))
    events = read_events(path)
    assert [e["ev"] for e in events] == ["odd", "tick"]


def test_record_event_fans_out_to_attached_sinks(tmp_path):
    rec = obs.attach(FlightRecorder(str(tmp_path / "a.events")))
    try:
        obs.record_event("ping", n=1)
        events = rec.events()
        assert len(events) == 1
        assert events[0]["ev"] == "ping"
        assert events[0]["n"] == 1
        assert isinstance(events[0]["ts"], float)
    finally:
        obs.detach(rec)
    obs.record_event("after-detach")
    assert len(rec) == 1


def test_sweep_recorder_honors_env(tmp_path, monkeypatch):
    monkeypatch.setenv(obs.OBS_ENV, "0")
    assert obs.sweep_recorder(str(tmp_path / "x.events")) is None
    monkeypatch.delenv(obs.OBS_ENV)
    rec = obs.sweep_recorder(str(tmp_path / "x.events"))
    try:
        assert rec is not None
        assert rec in obs.attached_recorders()
    finally:
        obs.detach(rec)
