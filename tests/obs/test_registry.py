"""Unit tests for the metrics registry (repro.obs.registry)."""

from __future__ import annotations

import pytest

from repro.obs.registry import (
    DEFAULT_MAX_SERIES,
    OVERFLOW_LABEL_VALUE,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


def test_counter_inc_value_total():
    c = Counter("c_total", "help", labels=("kind",))
    c.inc(kind="a")
    c.inc(2, kind="a")
    c.inc(kind="b")
    assert c.value(kind="a") == 3
    assert c.value(kind="b") == 1
    assert c.value(kind="missing") == 0
    assert c.total() == 4


def test_counter_rejects_decrease_and_bad_labels():
    c = Counter("c_total", labels=("kind",))
    with pytest.raises(ValueError, match="cannot decrease"):
        c.inc(-1, kind="a")
    with pytest.raises(ValueError, match="takes labels"):
        c.inc()  # missing label
    with pytest.raises(ValueError, match="takes labels"):
        c.inc(kind="a", extra="b")  # extra label
    with pytest.raises(ValueError, match="takes labels"):
        c.inc(wrong="a")  # wrong name


def test_gauge_set_inc_dec():
    g = Gauge("g")
    g.set(5)
    g.inc(2)
    g.dec()
    assert g.value() == 6


def test_histogram_observe_and_cumulative_render():
    h = Histogram("h_seconds", "latency", buckets=(0.1, 1.0, 10.0))
    for value in (0.05, 0.5, 0.5, 5.0, 50.0):
        h.observe(value)
    lines = h.render()
    assert "# TYPE h_seconds histogram" in lines
    # Buckets render cumulatively; values above every bound count only
    # toward +Inf.
    assert 'h_seconds_bucket{le="0.1"} 1' in lines
    assert 'h_seconds_bucket{le="1"} 3' in lines
    assert 'h_seconds_bucket{le="10"} 4' in lines
    assert 'h_seconds_bucket{le="+Inf"} 5' in lines
    assert "h_seconds_count 5" in lines
    (sum_line,) = [l for l in lines if l.startswith("h_seconds_sum")]
    assert float(sum_line.split()[1]) == pytest.approx(56.05)


def test_bounded_cardinality_folds_into_overflow():
    c = Counter("c_total", labels=("fp",), max_series=3)
    for i in range(10):
        c.inc(fp=f"cell-{i}")
    samples = dict(c.samples())
    # Three real series plus the single overflow fold.
    assert len(samples) == 4
    assert samples[(OVERFLOW_LABEL_VALUE,)] == 7
    assert c.dropped_series == 7
    # The bound holds no matter how many more distinct labels arrive.
    for i in range(100):
        c.inc(fp=f"more-{i}")
    assert len(c.samples()) == 4


def test_registry_get_or_create_and_mismatch():
    r = MetricsRegistry()
    c1 = r.counter("x_total", "help", ("kind",))
    c2 = r.counter("x_total", "other help", ("kind",))
    assert c1 is c2
    with pytest.raises(ValueError, match="already registered as counter"):
        r.gauge("x_total")
    with pytest.raises(ValueError, match="already registered with labels"):
        r.counter("x_total", labels=("other",))
    assert r.get("x_total") is c1
    assert r.get("nope") is None


def test_render_prometheus_format():
    r = MetricsRegistry()
    c = r.counter("repro_test_hits_total", "Test hits.", ("kind",))
    c.inc(kind="result")
    g = r.gauge("repro_test_depth", "Test depth.")
    g.set(3)
    text = r.render_prometheus()
    assert "# HELP repro_test_hits_total Test hits.\n" in text
    assert "# TYPE repro_test_hits_total counter\n" in text
    assert 'repro_test_hits_total{kind="result"} 1\n' in text
    assert "# TYPE repro_test_depth gauge\n" in text
    assert "repro_test_depth 3\n" in text
    assert text.endswith("\n")


def test_label_values_escaped_in_exposition():
    r = MetricsRegistry()
    c = r.counter("esc_total", labels=("k",))
    c.inc(k='sa"id\nline\\x')
    text = r.render_prometheus()
    assert 'esc_total{k="sa\\"id\\nline\\\\x"} 1' in text


def test_reset_zeroes_but_keeps_instruments():
    r = MetricsRegistry()
    c = r.counter("z_total", labels=("k",), max_series=2)
    c.inc(k="a")
    c.inc(k="b")
    c.inc(k="c")  # overflow
    assert c.dropped_series == 1
    r.reset()
    assert c.total() == 0
    assert c.dropped_series == 0
    assert r.get("z_total") is c


def test_default_max_series_is_sane():
    assert DEFAULT_MAX_SERIES >= 16
