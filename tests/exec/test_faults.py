"""Tests for the deterministic fault-injection harness (repro.exec.faults)."""

from __future__ import annotations

import os

import pytest

from repro.exec import faults
from repro.exec.faults import (
    FAULTS_ENV,
    FaultSpec,
    TransientFault,
    active_plan,
    encode_plan,
)
from repro.store import store as store_module
from repro.store.store import ArtifactStore

FP = "ab" * 32


def test_unknown_fault_kind_rejected():
    with pytest.raises(ValueError):
        FaultSpec("meteor")


def test_encode_plan_roundtrips_through_env(monkeypatch):
    spec = FaultSpec("exc", match="ev8", times=2, after=1, seconds=3.5,
                     token="/tmp/tok")
    monkeypatch.setenv(FAULTS_ENV, encode_plan(spec))
    faults.refresh()
    try:
        assert faults.enabled()
        assert faults._PLAN == (spec,)
    finally:
        monkeypatch.delenv(FAULTS_ENV)
        faults.refresh()
    assert not faults.enabled()


def test_before_task_gates_on_match_and_attempt():
    with active_plan(FaultSpec("exc", match="ev8", after=1, times=1)):
        faults.before_task("cell-ev8", 0)  # before the window
        with pytest.raises(TransientFault):
            faults.before_task("cell-ev8", 1)
        faults.before_task("cell-ev8", 2)  # after the window
        faults.before_task("cell-stream", 1)  # no substring match
    faults.before_task("cell-ev8", 1)  # plan deactivated on exit


def test_active_plan_restores_previous_env(monkeypatch):
    monkeypatch.setenv(FAULTS_ENV, encode_plan(FaultSpec("exc", match="x")))
    faults.refresh()
    before = os.environ[FAULTS_ENV]
    with active_plan(FaultSpec("hang", match="y", seconds=1.0)):
        assert os.environ[FAULTS_ENV] != before
    assert os.environ[FAULTS_ENV] == before
    monkeypatch.delenv(FAULTS_ENV)
    faults.refresh()


def test_unparseable_plan_is_ignored_with_warning(monkeypatch, capsys):
    monkeypatch.setenv(FAULTS_ENV, "{not json")
    faults._parse_warned = False
    faults.refresh()
    try:
        assert not faults.enabled()
        faults.before_task("anything", 0)  # no faults fire
    finally:
        monkeypatch.delenv(FAULTS_ENV)
        faults.refresh()
    assert "unparseable" in capsys.readouterr().err


def test_store_hook_installed_only_while_planned():
    assert store_module._write_fault_hook is None
    with active_plan(FaultSpec("store_err", match="result")):
        assert store_module._write_fault_hook is not None
    assert store_module._write_fault_hook is None
    # Task-kind plans never touch the store's write path.
    with active_plan(FaultSpec("exc", match="x")):
        assert store_module._write_fault_hook is None


def test_store_err_fires_per_target_with_counter_gating(tmp_path):
    store = ArtifactStore(str(tmp_path))
    with active_plan(FaultSpec("store_err", match="result", times=1)):
        with pytest.raises(OSError, match="injected store I/O error"):
            store.put("result", FP, b"payload")
        # Non-matching kinds are untouched.
        store.put("trace", FP, b"trace-bytes")
        # times=1: the second matching write goes through.
        store.put("result", FP, b"payload")
    assert store.get("result", FP) == b"payload"
    assert store.get("trace", FP) == b"trace-bytes"


def test_store_fault_token_fires_exactly_once(tmp_path):
    token = str(tmp_path / "claim.token")
    store = ArtifactStore(str(tmp_path / "store"))
    with active_plan(FaultSpec("store_err", match="result", times=99,
                               token=token)):
        with pytest.raises(OSError):
            store.put("result", FP, b"payload")
        # The token is claimed: every later match passes, despite times.
        store.put("result", FP, b"payload")
        store.put("result", "cd" * 32, b"other")
    assert os.path.exists(token)
    assert store.get("result", FP) == b"payload"


def test_claim_token_single_winner(tmp_path):
    path = str(tmp_path / "tok")
    assert faults._claim_token(path)
    assert not faults._claim_token(path)
