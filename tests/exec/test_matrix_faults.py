"""run_matrix under injected faults: bit-identical results, resume.

The acceptance bar for the resilience subsystem: every fault class the
harness can inject (worker SIGKILL, hang + deadline, transient
exceptions, SIGKILL mid-sweep) must leave ``run_matrix`` returning the
exact results of a fault-free run, and an interrupted store-backed
sweep must resume by re-simulating only its missing cells.
"""

from __future__ import annotations

import multiprocessing
import os
import warnings

import pytest

from repro.exec import FaultPolicy, FaultSpec, SweepError, faults
from repro.exec.faults import FAULTS_ENV, active_plan, encode_plan
from repro.experiments.runner import run_matrix
from repro.store.cache import ArtifactCache
from repro.store.store import read_journal

KW = dict(
    benchmarks=("gzip",),
    widths=(8,),
    archs=("stream", "ev8"),
    layouts=(True,),
    instructions=5000,
    warmup=1000,
    scale=0.3,
)
FAST = FaultPolicy(retries=2, backoff=0.0)


@pytest.fixture(scope="module")
def baseline():
    return run_matrix(**KW)


@pytest.mark.faults(timeout=300)
def test_worker_sigkill_bit_identical(baseline):
    with active_plan(FaultSpec("kill", match="ev8", times=1)):
        got = run_matrix(**KW, jobs=2, fault_policy=FAST)
    assert got.results == baseline.results


@pytest.mark.faults(timeout=300)
def test_hang_deadline_bit_identical(baseline):
    policy = FaultPolicy(timeout=20.0, retries=2, backoff=0.0)
    with active_plan(FaultSpec("hang", match="ev8", times=1, seconds=120)):
        got = run_matrix(**KW, jobs=2, fault_policy=policy)
    assert got.results == baseline.results


@pytest.mark.faults(timeout=300)
def test_transient_exceptions_bit_identical(baseline):
    with active_plan(FaultSpec("exc", match="ev8", times=2)):
        got = run_matrix(**KW, fault_policy=FAST)
    assert got.results == baseline.results


@pytest.mark.faults(timeout=300)
def test_failing_accel_cell_falls_back_once(baseline):
    # Two primary attempts (retries=1) are injected to fail; the final
    # fallback attempt runs the cell under the interpreter and must
    # still produce the bit-identical result.
    policy = FaultPolicy(retries=1, backoff=0.0)
    with active_plan(FaultSpec("exc", match="ev8", times=2)):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            got = run_matrix(**KW, fault_policy=policy)
    assert got.results == baseline.results
    fallback = [w for w in caught
                if "fallback arguments" in str(w.message)]
    assert len(fallback) == 1


@pytest.mark.faults(timeout=300)
def test_sweep_error_names_cells_and_resume_reuses_survivors(
    tmp_path, baseline
):
    cache = ArtifactCache(str(tmp_path))
    with active_plan(FaultSpec("exc", match="ev8", times=10)):
        with pytest.raises(SweepError) as excinfo, \
                warnings.catch_warnings():
            # The doomed cell legitimately announces its (also doomed)
            # accel->interp fallback attempt on the way down.
            warnings.simplefilter("ignore", RuntimeWarning)
            run_matrix(**KW, store=cache,
                       fault_policy=FaultPolicy(retries=1, backoff=0.0))
    err = excinfo.value
    assert err.completed == 1
    assert len(err.failures) == 1
    assert "ev8" in str(err)
    (key,) = err.failures
    assert key.arch == "ev8"
    assert len(err.failures[key]) == 3  # 2 primary attempts + fallback

    # The stream cell settled before the sweep failed and was persisted:
    # the re-run serves it from the store and simulates only ev8.
    cache2 = ArtifactCache(str(tmp_path))
    got = run_matrix(**KW, store=cache2, resume=True)
    assert got.results == baseline.results
    assert cache2.hits["result"] == 1
    assert cache2.misses["result"] == 1


def _killed_sweep_child(root: str) -> None:
    # after=2 lets the first cell's result (object + index writes) land,
    # then SIGKILLs this process between the second result's temp write
    # and its atomic replace — the torn-write worst case.
    os.environ[FAULTS_ENV] = encode_plan(
        FaultSpec("store_kill", match="result", after=2)
    )
    faults.refresh()
    run_matrix(**KW, store=root)


@pytest.mark.faults(timeout=300)
def test_sigkill_mid_sweep_then_resume_runs_only_missing_cells(
    tmp_path, baseline
):
    root = str(tmp_path)
    child = multiprocessing.get_context("fork").Process(
        target=_killed_sweep_child, args=(root,)
    )
    child.start()
    child.join(timeout=240)
    assert child.exitcode == -9

    # One cell was journaled before the kill.
    cache = ArtifactCache(root)
    journals = list(cache.store.iter_journals())
    assert len(journals) == 1
    record = read_journal(journals[0][1])
    assert record["cells"] == 2
    assert len(record["done"]) == 1

    # Resume: the survivor is a store hit, the torn cell a clean miss.
    got = run_matrix(**KW, store=cache, resume=True)
    assert got.results == baseline.results
    assert cache.hits["result"] == 1
    assert cache.misses["result"] == 1
    record = read_journal(journals[0][1])
    assert len(record["done"]) == 2


def test_journal_records_completed_sweep(tmp_path, capfd, baseline):
    cache = ArtifactCache(str(tmp_path))
    got = run_matrix(**KW, store=cache)
    assert got.results == baseline.results
    ((sweep_fp, path),) = cache.store.iter_journals()
    record = read_journal(path)
    assert record["sweep"] == sweep_fp
    assert record["cells"] == 2
    assert len(record["done"]) == 2

    capfd.readouterr()
    again = run_matrix(**KW, store=str(tmp_path), resume=True)
    assert again.results == baseline.results
    err = capfd.readouterr().err
    assert f"resume: sweep {sweep_fp[:12]}" in err
    assert "2/2" in err
    # No duplicate journal lines from the resumed run.
    assert len(read_journal(path)["done"]) == 2
