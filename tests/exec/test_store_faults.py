"""Store integrity under injected faults: torn writes degrade to clean
misses, unwritable stores degrade to storeless runs."""

from __future__ import annotations

import multiprocessing
import os
import time
import warnings

import pytest

from repro.exec import FaultPolicy, FaultSpec, faults
from repro.exec.faults import FAULTS_ENV, encode_plan
from repro.experiments.runner import run_matrix
from repro.store.store import ArtifactStore

KW = dict(
    benchmarks=("gzip",),
    widths=(8,),
    archs=("stream", "ev8"),
    layouts=(True,),
    instructions=5000,
    warmup=1000,
    scale=0.3,
)
FP = "ab" * 32


def _put_child(root: str, plan: str) -> None:
    os.environ[FAULTS_ENV] = plan
    faults.refresh()
    ArtifactStore(root).put("result", FP, b"payload", meta={"k": 1})


def _run_killed_put(root: str, match: str) -> None:
    child = multiprocessing.get_context("fork").Process(
        target=_put_child,
        args=(root, encode_plan(FaultSpec("store_kill", match=match))),
    )
    child.start()
    child.join(timeout=60)
    assert child.exitcode == -9


@pytest.mark.faults(timeout=120)
def test_sigkill_before_object_replace_is_a_clean_miss(tmp_path):
    store = ArtifactStore(str(tmp_path))
    _run_killed_put(str(tmp_path), ":object")
    # Neither the object nor the index landed: a miss, not a torn hit.
    assert store.get_entry("result", FP) is None
    assert store.get("result", FP) is None
    # The stranded temp file is swept by gc once past the writer grace.
    tmp_files = [
        os.path.join(dirpath, name)
        for dirpath, _, names in os.walk(str(tmp_path))
        for name in names if name.startswith(".tmp-")
    ]
    assert len(tmp_files) == 1
    old = time.time() - 7200
    os.utime(tmp_files[0], (old, old))
    assert store.gc()["tmp_removed"] == 1
    # The recompute path heals the store.
    store.put("result", FP, b"payload", meta={"k": 1})
    assert store.get("result", FP) == b"payload"


@pytest.mark.faults(timeout=120)
def test_sigkill_before_index_replace_is_a_clean_miss(tmp_path):
    store = ArtifactStore(str(tmp_path))
    _run_killed_put(str(tmp_path), ":index")
    # The object landed but the key never did: still a clean miss.
    assert store.get_entry("result", FP) is None
    assert store.get("result", FP) is None
    store.put("result", FP, b"payload", meta={"k": 1})
    assert store.get("result", FP) == b"payload"


def _baseline():
    return run_matrix(**KW)


@pytest.mark.faults(timeout=300)
def test_forked_worker_killed_during_trace_write(tmp_path):
    # The worker dies between a trace's temp write and its replace; the
    # parent pool re-dispatches the lost cell to a rebuilt worker.  The
    # token file guarantees the replacement is not killed again.
    baseline = _baseline()
    token = str(tmp_path / "claim.token")
    root = str(tmp_path / "store")
    with faults.active_plan(
        FaultSpec("store_kill", match="trace/", token=token)
    ):
        got = run_matrix(**KW, jobs=2, store=root,
                         fault_policy=FaultPolicy(retries=2, backoff=0.0))
    assert got.results == baseline.results
    assert os.path.exists(token), "fault never fired: test proved nothing"
    # The replacement worker healed the torn trace write.
    store = ArtifactStore(root)
    kinds = {kind for kind, _fp, _e in store.iter_index()}
    assert "trace" in kinds and "result" in kinds


def test_unwritable_store_warns_once_and_runs_storeless(tmp_path):
    baseline = _baseline()
    blocker = tmp_path / "blocker"
    blocker.write_text("not a directory")
    root = str(blocker / "store")  # mkdir fails under a regular file

    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        got = run_matrix(**KW, store=root)
    assert got.results == baseline.results
    warned = [w for w in caught if "not writable" in str(w.message)]
    assert len(warned) == 1
    assert issubclass(warned[0].category, RuntimeWarning)

    # Same root again: already warned, silently storeless.
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        again = run_matrix(**KW, store=root)
    assert again.results == baseline.results
    assert [w for w in caught if "not writable" in str(w.message)] == []
