"""Unit tests for the fault-tolerant job pools (repro.exec.pool)."""

from __future__ import annotations

import operator
import time
import warnings

import pytest

from repro.exec import (
    FaultPolicy,
    FaultSpec,
    ForkServerPool,
    Job,
    SerialPool,
    SweepError,
    backoff_delay,
)
from repro.exec.faults import active_plan

FAST = FaultPolicy(retries=2, backoff=0.0)


def _mode_probe(flag: str) -> str:
    if flag == "primary":
        raise RuntimeError("primary engine broken")
    return f"ran-{flag}"


def _local_result() -> object:
    return lambda: None  # unpicklable on purpose


# ----------------------------------------------------------------------
# policy / backoff
# ----------------------------------------------------------------------
def test_backoff_delay_deterministic_and_capped():
    policy = FaultPolicy(backoff=0.5, backoff_factor=2.0, backoff_max=3.0,
                         jitter=0.25)
    first = backoff_delay(policy, "cell-a", 1)
    assert first == backoff_delay(policy, "cell-a", 1)
    assert 0.5 <= first <= 0.5 * 1.25
    # Jitter differs across keys and attempts, deterministically.
    assert first != backoff_delay(policy, "cell-b", 1)
    assert backoff_delay(policy, "cell-a", 10) == 3.0
    assert backoff_delay(policy, "cell-a", 0) == 0.0
    assert backoff_delay(FaultPolicy(backoff=0.0), "cell-a", 3) == 0.0


def test_sweep_error_names_cells_and_counts():
    failures = {f"cell-{i}": [f"attempt 0: boom {i}"] for i in range(10)}
    err = SweepError(failures, completed=7)
    assert err.completed == 7
    assert err.failures == failures
    text = str(err)
    assert "10 cell(s) failed" in text
    assert "(7 completed)" in text
    assert "cell-0" in text and "... (2 more)" in text
    assert "boom 0" in text


# ----------------------------------------------------------------------
# serial pool
# ----------------------------------------------------------------------
def test_serial_pool_runs_in_order():
    order = []
    pool = SerialPool()
    results = pool.run(
        operator.add,
        [Job(i, (i, 100)) for i in range(5)],
        completed=lambda job, res: order.append(job.key),
    )
    assert results == {i: i + 100 for i in range(5)}
    assert order == list(range(5))


def test_serial_pool_retries_transient_exception():
    settled = {}
    with active_plan(FaultSpec("exc", match="flaky", times=2)):
        results = SerialPool(policy=FAST).run(
            operator.add,
            [Job("flaky-1", (1, 1)), Job("solid-2", (2, 2))],
            completed=lambda job, res: settled.update({job.key: job}),
        )
    assert results == {"flaky-1": 2, "solid-2": 4}
    assert settled["flaky-1"].attempt == 2
    assert len(settled["flaky-1"].failures) == 2
    assert "TransientFault" in settled["flaky-1"].failures[0]
    assert settled["solid-2"].failures == []


def test_serial_pool_raises_sweep_error_after_all_jobs_settle():
    with active_plan(FaultSpec("exc", match="flaky", times=10)):
        with pytest.raises(SweepError) as excinfo:
            SerialPool(policy=FaultPolicy(retries=1, backoff=0.0)).run(
                operator.add,
                [Job("flaky-1", (1, 1)), Job("solid-2", (2, 2))],
            )
    err = excinfo.value
    assert set(err.failures) == {"flaky-1"}
    assert len(err.failures["flaky-1"]) == 2  # 1 try + 1 retry
    assert err.completed == 1  # solid-2 still ran
    assert "flaky-1" in str(err)


def test_fallback_args_used_after_retries_with_single_warning():
    jobs = [
        Job("cell-a", ("primary",), fallback_args=("fallback",)),
        Job("cell-b", ("primary",), fallback_args=("fallback",)),
    ]
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        results = SerialPool(policy=FaultPolicy(retries=1, backoff=0.0)).run(
            _mode_probe, jobs
        )
    assert results == {"cell-a": "ran-fallback", "cell-b": "ran-fallback"}
    assert all(job.used_fallback for job in jobs)
    relevant = [w for w in caught if "fallback" in str(w.message)]
    assert len(relevant) == 1  # one warning per pool, not per cell
    assert issubclass(relevant[0].category, RuntimeWarning)


@pytest.mark.faults(timeout=60)
def test_serial_pool_attempt_timeout_preempts_hang():
    policy = FaultPolicy(timeout=0.3, retries=1, backoff=0.0)
    started = time.monotonic()
    with active_plan(FaultSpec("hang", match="stuck", times=1, seconds=30)):
        results = SerialPool(policy=policy).run(
            operator.add, [Job("stuck-1", (3, 4))]
        )
    assert results == {"stuck-1": 7}
    assert time.monotonic() - started < 20  # preempted, not slept out


# ----------------------------------------------------------------------
# forked pool
# ----------------------------------------------------------------------
def test_fork_pool_matches_serial_results():
    jobs = [Job(i, (i, 3)) for i in range(6)]
    serial = SerialPool().run(operator.mul, [Job(i, (i, 3)) for i in range(6)])
    order = []
    with ForkServerPool(2) as pool:
        forked = pool.run(operator.mul, jobs,
                          completed=lambda job, res: order.append(job.key))
    assert forked == serial
    assert sorted(order) == list(range(6))


def test_fork_pool_validates_max_workers():
    with pytest.raises(ValueError):
        ForkServerPool(0)


def test_fork_pool_rejects_runs_after_close():
    pool = ForkServerPool(1)
    pool.close()
    with pytest.raises(RuntimeError):
        pool.run(operator.add, [Job("k", (1, 2))])


@pytest.mark.faults(timeout=120)
def test_fork_pool_rebuilds_after_worker_crash():
    jobs = [Job("victim", (10, 1))] + [Job(f"ok-{i}", (i, 1))
                                       for i in range(3)]
    with active_plan(FaultSpec("kill", match="victim", times=1)):
        with ForkServerPool(2, policy=FAST) as pool:
            results = pool.run(operator.add, jobs)
    assert results["victim"] == 11
    assert all(results[f"ok-{i}"] == i + 1 for i in range(3))
    assert pool.rebuilds == 1
    assert not pool.degraded


@pytest.mark.faults(timeout=120)
def test_fork_pool_kills_over_deadline_worker_and_retries():
    policy = FaultPolicy(timeout=1.0, retries=1, backoff=0.0)
    started = time.monotonic()
    with active_plan(FaultSpec("hang", match="stuck", times=1, seconds=60)):
        with ForkServerPool(2, policy=policy) as pool:
            results = pool.run(operator.add,
                               [Job("stuck", (5, 5)), Job("fine", (1, 1))])
    assert results == {"stuck": 10, "fine": 2}
    assert pool.timeouts == 1
    # A deliberate deadline kill is not a crash: no degradation pressure.
    assert pool.rebuilds == 0
    assert time.monotonic() - started < 45


@pytest.mark.faults(timeout=120)
def test_fork_pool_degrades_to_serial_after_rebuild_budget():
    # times=1 so the re-run of the victim (attempt 1) in the degraded
    # parent does not re-inject the SIGKILL there.
    policy = FaultPolicy(retries=2, backoff=0.0, max_rebuilds=0)
    jobs = [Job("victim", (10, 2))] + [Job(f"ok-{i}", (i, 2))
                                       for i in range(3)]
    with active_plan(FaultSpec("kill", match="victim", times=1)):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            with ForkServerPool(2, policy=policy) as pool:
                results = pool.run(operator.add, jobs)
    assert pool.degraded
    assert results["victim"] == 12
    assert all(results[f"ok-{i}"] == i + 2 for i in range(3))
    degraded = [w for w in caught if "serially" in str(w.message)]
    assert len(degraded) == 1


def test_fork_pool_unpicklable_result_is_a_job_failure_not_a_crash():
    with ForkServerPool(1, policy=FaultPolicy(retries=0)) as pool:
        with pytest.raises(SweepError) as excinfo:
            pool.run(_local_result, [Job("weird")])
    assert "not transmittable" in str(excinfo.value)
    # The worker survived the failed send: no rebuild happened.
    assert pool.rebuilds == 0


# ----------------------------------------------------------------------
# shutdown hardening (the serve daemon closes pools from several paths)
# ----------------------------------------------------------------------
def test_fork_pool_close_is_idempotent_and_mixes_with_terminate():
    pool = ForkServerPool(2)
    pool.run(operator.add, [Job(i, (i, 1)) for i in range(4)])
    assert pool.alive_workers > 0
    pool.close()
    assert pool.closed
    assert pool.alive_workers == 0
    # Every further teardown path is a no-op, in any order.
    pool.close()
    pool.terminate()
    pool.close()
    assert pool.closed and pool.alive_workers == 0


def test_fork_pool_terminate_then_close():
    pool = ForkServerPool(2)
    pool.run(operator.add, [Job(i, (i, 1)) for i in range(4)])
    procs = [w.proc for w in pool._workers]
    pool.terminate()
    pool.terminate()
    pool.close()
    assert pool.closed
    assert all(not proc.is_alive() for proc in procs)


def test_fork_pool_concurrent_close_from_two_threads():
    import threading as _threading

    pool = ForkServerPool(2)
    pool.run(operator.add, [Job(i, (i, 1)) for i in range(4)])
    errors = []

    def teardown(fn):
        try:
            fn()
        except Exception as exc:  # pragma: no cover - the regression
            errors.append(exc)

    threads = [
        _threading.Thread(target=teardown, args=(pool.close,)),
        _threading.Thread(target=teardown, args=(pool.terminate,)),
        _threading.Thread(target=teardown, args=(pool.close,)),
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30)
    assert not errors
    assert pool.closed and pool.alive_workers == 0


def test_fork_pool_reusable_across_runs():
    # The serve daemon keeps one resident pool across many sweeps.
    with ForkServerPool(2) as pool:
        first = pool.run(operator.add, [Job(i, (i, 1)) for i in range(3)])
        pids_before = {w.proc.pid for w in pool._workers}
        second = pool.run(operator.mul, [Job(i, (i, 2)) for i in range(3)])
        pids_after = {w.proc.pid for w in pool._workers}
    assert first == {i: i + 1 for i in range(3)}
    assert second == {i: i * 2 for i in range(3)}
    # Workers stayed resident between runs (no respawn).
    assert pids_before == pids_after and pids_before


# ----------------------------------------------------------------------
# serial deadlines off the main thread (daemon scheduler threads)
# ----------------------------------------------------------------------
def test_serial_deadline_off_main_thread_degrades_with_one_warning():
    import threading as _threading

    from repro.common import reset_warn_once

    policy = FaultPolicy(timeout=30.0, retries=0, backoff=0.0)
    outcomes = {}

    def drive(tag):
        outcomes[tag] = SerialPool(policy=policy).run(
            operator.add, [Job(f"{tag}-job", (1, 2))]
        )

    reset_warn_once("exec.deadline-thread")
    try:
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            for tag in ("first", "second"):
                thread = _threading.Thread(target=drive, args=(tag,))
                thread.start()
                thread.join(timeout=60)
    finally:
        reset_warn_once("exec.deadline-thread")
    # Both runs completed (no ValueError from signal.signal), results
    # intact, and exactly one warn-once across both threads.
    assert outcomes == {"first": {"first-job": 3}, "second": {"second-job": 3}}
    relevant = [w for w in caught if "main thread" in str(w.message)]
    assert len(relevant) == 1
    assert issubclass(relevant[0].category, RuntimeWarning)
