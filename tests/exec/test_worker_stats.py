"""Per-worker utilization counters on the pools (the uniform surface
the cluster scheduler and ``serve status`` report)."""

from __future__ import annotations

import operator
import os

from repro.exec import FaultPolicy, ForkServerPool, Job, SerialPool


def _victim_or_ok(flag: str) -> str:
    if flag == "die":
        os._exit(11)
    return flag


def test_serial_pool_counts_dispatches_and_completions():
    pool = SerialPool()
    pool.run(operator.mul, [Job(i, (i, 2)) for i in range(5)])
    assert pool.jobs_dispatched == 5
    assert pool.jobs_completed == 5
    stats = pool.worker_stats()
    assert stats == {"dispatched": 5, "completed": 5, "workers": []}


def test_serial_pool_counts_retries_as_dispatches():
    flaky = {"left": 2}

    def wobbly(n):
        if flaky["left"]:
            flaky["left"] -= 1
            raise RuntimeError("transient")
        return n

    pool = SerialPool(policy=FaultPolicy(retries=3, backoff=0.0))
    pool.run(wobbly, [Job("cell", (7,))])
    assert pool.jobs_dispatched == 3  # two failed attempts + success
    assert pool.jobs_completed == 1


def test_fork_pool_reports_per_worker_slots():
    with ForkServerPool(2) as pool:
        pool.run(operator.mul, [Job(i, (i, 3)) for i in range(6)])
        stats = pool.worker_stats()
    assert stats["dispatched"] == 6
    assert stats["completed"] == 6
    workers = stats["workers"]
    assert [w["slot"] for w in workers] == [0, 1]
    assert sum(w["dispatched"] for w in workers) == 6
    assert sum(w["completed"] for w in workers) == 6
    assert all(set(w) == {"slot", "alive", "busy", "dispatched",
                          "completed"} for w in workers)


def test_fork_pool_worker_counters_survive_rebuilds():
    # A crashed worker's replacement reuses its slot; pool-level
    # totals keep counting across the rebuild.
    jobs = [Job("victim", ("die",), fallback_args=("ok",))] + [
        Job(f"ok-{i}", (f"v{i}",)) for i in range(3)
    ]
    with ForkServerPool(2, policy=FaultPolicy(retries=0,
                                              backoff=0.0)) as pool:
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            results = pool.run(_victim_or_ok, jobs)
        stats = pool.worker_stats()
    assert len(results) == 4
    assert stats["completed"] == 4
    assert stats["dispatched"] >= 5  # the crashed attempt counted too
    assert [w["slot"] for w in stats["workers"]] == [0, 1]
