"""In-process scheduler tests: admission, coalescing, deadlines,
failure propagation — no sockets involved."""

from __future__ import annotations

import threading
import time

import pytest
from helpers import result_digest

from repro.exec.faults import FaultSpec, active_plan
from repro.exec.policy import FaultPolicy
from repro.experiments.runner import run_matrix
from repro.serve.protocol import CELL_DEADLINE, CELL_FAILED, CELL_OK, \
    MatrixQuery
from repro.serve.scheduler import Draining, ExperimentScheduler, Overloaded

ONE_CELL = MatrixQuery(
    benchmarks=("gzip",), widths=(8,), archs=("stream",), layouts=(True,),
    instructions=3000, warmup=1000, scale=0.3,
)
TWO_CELLS = MatrixQuery(
    benchmarks=("gzip",), widths=(8,), archs=("stream", "ev8"),
    layouts=(True,), instructions=3000, warmup=1000, scale=0.3,
)


def _local(query: MatrixQuery):
    return run_matrix(
        query.benchmarks, widths=query.widths, archs=query.archs,
        layouts=query.layouts, instructions=query.instructions,
        warmup=query.warmup, scale=query.scale,
    )


@pytest.fixture
def scheduler(tmp_path):
    sched = ExperimentScheduler(store_root=str(tmp_path / "store"),
                                max_workers=2)
    yield sched
    sched.drain(timeout=120)


def test_cold_then_warm_matches_local(scheduler):
    base = _local(TWO_CELLS)
    outcomes = scheduler.submit(TWO_CELLS).wait()
    assert [o.status for o in outcomes] == [CELL_OK, CELL_OK]
    assert {o.source for o in outcomes} == {"computed"}
    got = {o.spec: o.result for o in outcomes}
    assert got == base.results
    # Second submission: everything from the store, no new simulations.
    outcomes = scheduler.submit(TWO_CELLS).wait()
    assert {o.source for o in outcomes} == {"store"}
    assert {o.spec: o.result for o in outcomes} == base.results
    assert scheduler.cells_computed == 2


def test_concurrent_identical_requests_coalesce(scheduler):
    base = _local(ONE_CELL)
    n = 4
    barrier = threading.Barrier(n)
    results = [None] * n

    def client(i):
        barrier.wait()
        results[i] = scheduler.submit(ONE_CELL).wait()

    threads = [threading.Thread(target=client, args=(i,)) for i in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=300)
    (expected,) = base.results.values()
    for outcomes in results:
        assert outcomes is not None
        (outcome,) = outcomes
        assert outcome.status == CELL_OK
        assert result_digest(outcome.result) == result_digest(expected)
    # One simulation total; at least the store-missed requests that
    # arrived while it ran were coalesced, not re-queued.
    assert scheduler.cells_computed == 1
    status = scheduler.status()
    assert status["cells"]["computed"] == 1
    assert status["cells"]["coalesced"] + sum(
        1 for outcomes in results if outcomes[0].source == "store"
    ) == n - 1


def test_overload_rejects_but_coalescing_still_admits(tmp_path):
    sched = ExperimentScheduler(store_root=str(tmp_path / "store"),
                                queue_limit=1, max_workers=1)
    try:
        with pytest.raises(Overloaded):
            sched.submit(TWO_CELLS)  # 2 owned cells > limit 1
        ticket = sched.submit(ONE_CELL)  # 1 owned cell fits exactly
        # An identical concurrent request owns nothing -> admitted even
        # at the limit (it coalesces onto the in-flight cell).
        ticket2 = sched.submit(ONE_CELL)
        assert [o.status for o in ticket.wait()] == [CELL_OK]
        assert [o.status for o in ticket2.wait()] == [CELL_OK]
    finally:
        assert sched.drain(timeout=120)
    # The rejected request left no residue.
    assert sched.status()["queue"]["backlog"] == 0
    assert sched.status()["cells"]["pending"] == 0


def test_zero_deadline_is_rejected_typed(scheduler):
    with pytest.raises(Overloaded):
        scheduler.submit(MatrixQuery(
            benchmarks=("gzip",), widths=(8,), archs=("stream",),
            layouts=(True,), instructions=3000, warmup=1000, scale=0.3,
            deadline=0.0,
        ))


def test_draining_scheduler_refuses_admission(tmp_path):
    sched = ExperimentScheduler(store_root=str(tmp_path / "store"))
    assert sched.drain(timeout=120)
    with pytest.raises(Draining):
        sched.submit(ONE_CELL)


@pytest.mark.faults(timeout=120)
def test_failing_cell_reports_typed_failure(tmp_path):
    # Serial execution in the executor thread: the injected exception
    # outlives the retry budget, so the cell must settle as a typed
    # per-cell failure (and the other cell must still succeed).
    sched = ExperimentScheduler(
        store_root=str(tmp_path / "store"), use_fork_pool=False,
        policy=FaultPolicy(retries=1, backoff=0.0),
    )
    try:
        with active_plan(FaultSpec("exc", match="ev8", times=8)):
            outcomes = sched.submit(TWO_CELLS).wait()
        by_arch = {o.spec.arch: o for o in outcomes}
        assert by_arch["stream"].status == CELL_OK
        assert by_arch["ev8"].status == CELL_FAILED
        assert "injected" in by_arch["ev8"].error
        assert sched.cells_failed == 1
        # The failure is not sticky: a fault-free resubmission computes
        # the cell (stream now comes from the store).
        outcomes = sched.submit(TWO_CELLS).wait()
        assert {o.spec.arch: o.status for o in outcomes} == \
            {"stream": CELL_OK, "ev8": CELL_OK}
        assert by_arch["stream"].result == \
            {o.spec.arch: o for o in outcomes}["stream"].result
    finally:
        assert sched.drain(timeout=120)


@pytest.mark.faults(timeout=120)
def test_deadline_returns_partials_and_drops_unwanted_cells(tmp_path):
    # Request A's only cell hangs ~4s on the single worker; request B
    # arrives mid-batch with a tiny deadline, so its cell sits queued
    # and never starts.  B must get a typed ``deadline`` partial, its
    # released claim must let the scheduler drop the cell unrun, and
    # A's hung-but-started cell must still finish into the store.
    sched = ExperimentScheduler(
        store_root=str(tmp_path / "store"), max_workers=1,
        policy=FaultPolicy(timeout=60.0, retries=1, backoff=0.0),
    )
    try:
        with active_plan(FaultSpec("hang", match="stream", times=1,
                                   seconds=4.0)):
            ticket_a = sched.submit(ONE_CELL)  # stream: hangs, no deadline
            time.sleep(1.0)  # the executor is now inside A's batch
            ticket_b = sched.submit(MatrixQuery(
                benchmarks=("gzip",), widths=(8,), archs=("ev8",),
                layouts=(True,), instructions=3000, warmup=1000,
                scale=0.3, deadline=0.2,
            ))
            assert [o.status for o in ticket_b.wait()] == [CELL_DEADLINE]
            assert [o.status for o in ticket_a.wait()] == [CELL_OK]
    finally:
        assert sched.drain(timeout=120)
    # A's cell computed (the hang only delayed it); B's queued cell was
    # dropped unrun once its only waiter gave up.
    assert sched.cells_computed == 1
    assert sched.cells_dropped == 1
    assert sched.status()["cells"]["pending"] == 0
    assert sched.status()["queue"]["backlog"] == 0


def test_status_surface_shape(scheduler):
    scheduler.submit(ONE_CELL).wait()
    status = scheduler.status()
    assert status["requests"] == 1
    assert status["cells"]["computed"] == 1
    assert status["queue"]["limit"] == scheduler.queue_limit
    assert status["pool"]["kind"] in ("fork", "serial", "none")
    assert status["resident"]["programs"] >= 1
    assert status["store"]["misses"]["result"] >= 1
    assert status["uptime"] > 0
