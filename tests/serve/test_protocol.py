"""Wire-protocol unit tests: framing, validation, result payloads."""

from __future__ import annotations

import io

import pytest
from helpers import result_digest

from repro.experiments.runner import run_matrix
from repro.serve import protocol
from repro.serve.protocol import MatrixQuery, ProtocolError


def _roundtrip(message):
    buf = io.BytesIO()
    protocol.write_message(buf, message)
    buf.seek(0)
    return protocol.read_message(buf)


def test_message_roundtrip_and_eof():
    assert _roundtrip({"op": "ping", "n": 3}) == {"op": "ping", "n": 3}
    assert protocol.read_message(io.BytesIO(b"")) is None


def test_read_rejects_garbage_and_non_objects():
    with pytest.raises(ProtocolError):
        protocol.read_message(io.BytesIO(b"not json\n"))
    with pytest.raises(ProtocolError):
        protocol.read_message(io.BytesIO(b"[1, 2]\n"))


def test_read_rejects_oversized_line(monkeypatch):
    monkeypatch.setattr(protocol, "MAX_LINE_BYTES", 64)
    with pytest.raises(ProtocolError, match="exceeds"):
        protocol.read_message(io.BytesIO(b"x" * 200 + b"\n"))


def test_error_response_shape():
    out = protocol.error_response(protocol.ERROR_OVERLOADED, "busy",
                                  retry_after=1.5)
    assert out == {"ok": False, "error": "overloaded", "message": "busy",
                   "retry_after": 1.5}


def test_result_payload_roundtrips_bit_identically():
    matrix = run_matrix(("gzip",), widths=(8,), archs=("stream",),
                        layouts=(True,), instructions=3000, warmup=1000,
                        scale=0.3)
    (result,) = matrix.results.values()
    decoded = protocol.decode_result(protocol.encode_result(result))
    assert decoded == result
    assert result_digest(decoded) == result_digest(result)


def test_decode_result_rejects_bad_payloads():
    with pytest.raises(ProtocolError):
        protocol.decode_result("not base64!!")
    with pytest.raises(ProtocolError):
        protocol.decode_result("YWJjZGVm")  # valid base64, not an artifact


# ----------------------------------------------------------------------
# matrix query validation
# ----------------------------------------------------------------------
def _wire(**overrides):
    message = {
        "op": "matrix",
        "benchmarks": ["gzip"],
        "widths": [8],
        "archs": ["stream"],
        "layouts": [True],
        "instructions": 3000,
        "warmup": 1000,
        "scale": 0.3,
    }
    message.update(overrides)
    return message


def test_parse_matrix_query_happy_path_and_wire_roundtrip():
    query = protocol.parse_matrix_query(_wire())
    assert query == MatrixQuery(
        benchmarks=("gzip",), widths=(8,), archs=("stream",),
        layouts=(True,), instructions=3000, warmup=1000, scale=0.3,
    )
    assert protocol.parse_matrix_query(query.to_wire()) == query


def test_parse_matrix_query_defaults():
    query = protocol.parse_matrix_query({"op": "matrix",
                                         "benchmarks": ["gzip"]})
    assert query.widths == (8,)
    assert query.layouts == (False, True)
    assert query.warmup == query.instructions // 3
    assert query.deadline is None
    assert len(query.archs) >= 2  # all architectures


@pytest.mark.parametrize("bad", [
    {"benchmarks": []},
    {"benchmarks": ["no-such-benchmark"]},
    {"benchmarks": [42]},
    {"archs": ["no-such-arch"]},
    {"widths": []},
    {"widths": [0]},
    {"widths": [True]},
    {"layouts": [1]},
    {"instructions": 0},
    {"instructions": "many"},
    {"warmup": -1},
    {"scale": 0},
    {"engine_mode": "turbo"},
    {"deadline": "soon"},
])
def test_parse_matrix_query_rejects(bad):
    with pytest.raises(ProtocolError):
        protocol.parse_matrix_query(_wire(**bad))
