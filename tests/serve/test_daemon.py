"""End-to-end daemon smoke tests: a real ``python -m repro.serve``
subprocess on an ephemeral port, driven through the public client."""

from __future__ import annotations

import socket
import warnings

import pytest
from helpers import result_digest

from repro.experiments.runner import run_matrix
from repro.serve.__main__ import _Daemon
from repro.serve.client import ServeError, ServeUnavailable

MATRIX = dict(benchmarks=("gzip",), widths=(8,), archs=("stream",),
              layouts=(True,), instructions=3000, warmup=1000, scale=0.3)


def test_daemon_smoke_cold_warm_bitidentical_drain(tmp_path):
    """Boot, serve one cold + one warm query bit-identically, drain."""
    base = run_matrix(**MATRIX)
    with _Daemon(str(tmp_path / "store")) as daemon:
        ping = daemon.client.ping()
        assert ping["ok"] and ping["pid"] == daemon.proc.pid

        cold = daemon.client.run_matrix(**MATRIX)
        assert cold.results == base.results
        assert [result_digest(r) for r in cold.results.values()] == \
            [result_digest(r) for r in base.results.values()]

        warm = daemon.client.run_matrix(**MATRIX)
        assert warm.results == base.results

        status = daemon.client.status()
        assert status["cells"]["computed"] == 1  # the warm hit cost 0
        assert status["requests"] == 2
        assert status["store"]["hits"]["result"] >= 1
        assert not status["draining"]

        assert daemon.drain_and_wait() == 0


def test_run_matrix_serve_param_uses_daemon_and_falls_back(tmp_path):
    """The runner's serve= path: daemon when present, local otherwise."""
    base = run_matrix(**MATRIX)
    with _Daemon(str(tmp_path / "store")) as daemon:
        address = f"{daemon.client.host}:{daemon.client.port}"
        seen = []
        remote = run_matrix(**MATRIX, serve=address,
                            progress=seen.append)
        assert remote.results == base.results
        assert len(seen) == 1  # progress streamed per cell
        assert daemon.client.status()["requests"] == 1
        assert daemon.drain_and_wait() == 0

    # Nothing listens there anymore: one warning, then a local run
    # that still returns the identical matrix.
    from repro.common import reset_warn_once
    reset_warn_once(f"serve.unreachable:{address}")
    with pytest.warns(RuntimeWarning, match="running locally"):
        fallback = run_matrix(**MATRIX, serve=address)
    assert fallback.results == base.results
    with warnings.catch_warnings():
        warnings.simplefilter("error")  # second failure is quiet
        again = run_matrix(**MATRIX, serve=address)
    assert again.results == base.results


def test_daemon_answers_bad_requests_typed(tmp_path):
    with _Daemon(None) as daemon:
        with pytest.raises(ServeError, match="bad_request"):
            daemon.client.request({"op": "matrix",
                                   "benchmarks": ["nope"]})
        with pytest.raises(ServeError, match="bad_request"):
            daemon.client.request({"op": "frobnicate"})
        # Garbage framing gets a typed error too, then the daemon
        # still serves the next connection.
        with socket.create_connection(
            (daemon.client.host, daemon.client.port), timeout=10
        ) as sock:
            sock.sendall(b"this is not json\n")
            assert b"bad_request" in sock.makefile("rb").readline()
        assert daemon.client.ping()["ok"]
        assert daemon.drain_and_wait() == 0


def test_client_unavailable_is_typed():
    client_error = None
    # A port nothing listens on (bind-then-close reserves a dead one).
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    from repro.serve.client import ServeClient

    try:
        ServeClient("127.0.0.1", port).ping()
    except ServeUnavailable as exc:
        client_error = exc
    assert client_error is not None
