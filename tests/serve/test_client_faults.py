"""Client error taxonomy under injected socket failures.

Every way a connection can go wrong maps to one typed exception and
never to a hang: refused connections (with a bounded, deterministic
retry budget), resets mid-frame, garbage frames, oversized frames, and
the ``net_*`` fault-injection kinds that emulate all of the above.
"""

from __future__ import annotations

import errno
import io
import socket
import struct
import threading
import time

import pytest

from repro.exec.faults import FaultSpec, active_plan
from repro.exec.policy import backoff_delay
from repro.serve import protocol
from repro.serve.client import (
    DEFAULT_MATRIX_TIMEOUT,
    ServeClient,
    ServeError,
    ServeUnavailable,
)


def _dead_port() -> int:
    """A port nothing listens on (bind-then-close reserves a dead one)."""
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return port


def _serve_once(payload: bytes, rst: bool = False) -> int:
    """One-shot server: accept, read the request line, answer
    ``payload`` verbatim, close (with an RST instead of a FIN when
    ``rst``).  Returns the port."""
    server = socket.socket()
    server.bind(("127.0.0.1", 0))
    server.listen(1)
    port = server.getsockname()[1]

    def run() -> None:
        conn, _ = server.accept()
        try:
            conn.makefile("rb").readline()
            if payload:
                conn.sendall(payload)
            if rst:
                conn.setsockopt(socket.SOL_SOCKET, socket.SO_LINGER,
                                struct.pack("ii", 1, 0))
        finally:
            conn.close()
            server.close()

    threading.Thread(target=run, daemon=True).start()
    return port


# ----------------------------------------------------------------------
# connect-phase failures
# ----------------------------------------------------------------------
def test_refused_is_unavailable_without_retries():
    client = ServeClient("127.0.0.1", _dead_port(), connect_retries=0)
    with pytest.raises(ServeUnavailable, match="no serve daemon"):
        client.ping()


def test_transient_refusals_retry_with_deterministic_backoff(monkeypatch):
    attempts = []
    delays = []

    def refuse(address, timeout=None):
        attempts.append(address)
        raise ConnectionRefusedError(errno.ECONNREFUSED, "refused")

    monkeypatch.setattr(socket, "create_connection", refuse)
    monkeypatch.setattr(time, "sleep", delays.append)
    client = ServeClient("127.0.0.1", 1234, connect_retries=2,
                         connect_backoff=0.2)
    with pytest.raises(ServeUnavailable):
        client.ping()
    assert len(attempts) == 3  # initial + 2 retries
    # The same sha256-derived jittered schedule the pools use, keyed
    # on the address: a fleet of clients never retries in lockstep.
    expected = [backoff_delay(client._backoff_policy, client.address, n)
                for n in (1, 2)]
    assert delays == expected
    assert all(d > 0 for d in delays)


def test_non_transient_connect_errors_fail_fast(monkeypatch):
    attempts = []

    def unreachable(address, timeout=None):
        attempts.append(address)
        raise OSError(errno.EHOSTUNREACH, "no route to host")

    monkeypatch.setattr(socket, "create_connection", unreachable)
    client = ServeClient("127.0.0.1", 1234, connect_retries=5)
    with pytest.raises(ServeUnavailable, match="no route"):
        client.ping()
    assert len(attempts) == 1  # no retry budget burned on a dead route


# ----------------------------------------------------------------------
# response-phase failures (real sockets, one-shot servers)
# ----------------------------------------------------------------------
def test_hangup_before_response_is_unavailable():
    port = _serve_once(b"")
    client = ServeClient("127.0.0.1", port, connect_retries=0)
    with pytest.raises(ServeUnavailable, match="hung up"):
        client.request({"op": "ping"}, timeout=10)


def test_reset_mid_frame_is_unavailable():
    # Half a frame, then an RST: readline blocks on the missing
    # newline until the reset surfaces as a typed error, not a hang.
    port = _serve_once(b'{"ok": tru', rst=True)
    client = ServeClient("127.0.0.1", port, connect_retries=0)
    with pytest.raises(ServeUnavailable, match="failed"):
        client.request({"op": "ping"}, timeout=10)


def test_truncated_frame_is_typed_error():
    # Half a frame then a clean FIN: an undecodable line, not a hang.
    port = _serve_once(b'{"ok": tru')
    client = ServeClient("127.0.0.1", port, connect_retries=0)
    with pytest.raises(ServeError, match="bad response"):
        client.request({"op": "ping"}, timeout=10)


def test_garbage_frame_is_typed_error():
    port = _serve_once(b"\xfe\xed not json at all\xff\n")
    client = ServeClient("127.0.0.1", port, connect_retries=0)
    with pytest.raises(ServeError, match="bad response"):
        client.request({"op": "ping"}, timeout=10)


def test_oversized_frame_is_typed_error(monkeypatch):
    monkeypatch.setattr(protocol, "MAX_LINE_BYTES", 64)
    payload = b'{"ok": true, "pad": "' + b"x" * 200 + b'"}\n'
    port = _serve_once(payload)
    client = ServeClient("127.0.0.1", port, connect_retries=0)
    with pytest.raises(ServeError, match="bad response"):
        client.request({"op": "ping"}, timeout=10)


# ----------------------------------------------------------------------
# injected net_* faults drive the same taxonomy
# ----------------------------------------------------------------------
def test_net_refuse_fault_maps_to_unavailable():
    port = _serve_once(b'{"ok": true}\n')
    client = ServeClient("127.0.0.1", port, connect_retries=0)
    with active_plan(FaultSpec("net_refuse", match=client.address,
                               times=1)):
        with pytest.raises(ServeUnavailable):
            client.request({"op": "ping"}, timeout=10)


def test_net_drop_fault_writes_half_then_resets():
    stream = io.BytesIO()
    with active_plan(FaultSpec("net_drop", times=1)):
        with pytest.raises(ConnectionResetError):
            protocol.write_message(stream, {"op": "ping"}, target="x:1")
    full = b'{"op":"ping"}\n'
    assert stream.getvalue() == full[:len(full) // 2]


def test_net_garbage_fault_consumes_the_write():
    stream = io.BytesIO()
    with active_plan(FaultSpec("net_garbage", times=1)):
        protocol.write_message(stream, {"op": "ping"}, target="x:1")
    garbage = stream.getvalue()
    assert garbage.endswith(b"\n") and b"ping" not in garbage
    with pytest.raises(protocol.ProtocolError):
        protocol.read_message(io.BytesIO(garbage))


def test_net_delay_fault_sleeps_then_delivers():
    stream = io.BytesIO()
    with active_plan(FaultSpec("net_delay", times=1, seconds=0.05)):
        started = time.monotonic()
        protocol.write_message(stream, {"op": "ping"}, target="x:1")
        elapsed = time.monotonic() - started
    assert elapsed >= 0.05
    assert protocol.read_message(io.BytesIO(stream.getvalue())) == \
        {"op": "ping"}


def test_net_fault_match_routes_by_address():
    # A plan scoped to one node's address leaves other targets alone.
    stream = io.BytesIO()
    with active_plan(FaultSpec("net_refuse", match="10.0.0.9:4242",
                               times=8)):
        protocol.write_message(stream, {"op": "ping"},
                               target="127.0.0.1:1111")
        with pytest.raises(ConnectionRefusedError):
            protocol.write_message(stream, {"op": "ping"},
                                   target="10.0.0.9:4242")
    assert protocol.read_message(io.BytesIO(stream.getvalue())) == \
        {"op": "ping"}


# ----------------------------------------------------------------------
# frame caps: parameterized, negotiated, typed
# ----------------------------------------------------------------------
def test_read_message_honors_explicit_max_bytes():
    big = b'{"op": "ping", "pad": "' + b"x" * 256 + b'"}\n'
    with pytest.raises(protocol.FrameTooLarge, match="exceeds 64"):
        protocol.read_message(io.BytesIO(big), max_bytes=64)
    # The same frame is fine under the (much larger) default cap.
    assert protocol.read_message(io.BytesIO(big))["op"] == "ping"


def test_frame_too_large_is_a_protocol_error():
    # Callers that only catch ProtocolError keep working.
    assert issubclass(protocol.FrameTooLarge, protocol.ProtocolError)


def test_daemon_frame_cap_is_negotiated_and_typed():
    from repro.serve.server import ExperimentServer

    with ExperimentServer(max_frame_bytes=512) as server:
        host, port = server.address
        # Negotiated: ping advertises the daemon's cap.
        client = ServeClient(host, port)
        assert client.ping()["max_frame"] == 512
        # An oversized request bounces with the typed error carrying
        # the limit — not a hang, not a cut connection.  (The frame
        # stays under the handler's 8K read buffer so the daemon can
        # drain it before closing.)
        with socket.create_connection((host, port), timeout=10) as sock:
            with sock.makefile("rwb") as stream:
                stream.write(b'{"op": "ping", "pad": "' +
                             b"x" * 2048 + b'"}\n')
                stream.flush()
                response = protocol.read_message(stream)
        assert response["ok"] is False
        assert response["error"] == protocol.ERROR_FRAME_TOO_LARGE
        assert response["limit"] == 512


# ----------------------------------------------------------------------
# deadline-less requests stay bounded
# ----------------------------------------------------------------------
def test_matrix_requests_have_a_bounded_default_timeout():
    captured = []

    class Spy(ServeClient):
        def request(self, message, timeout=None):
            captured.append(timeout)
            return {"ok": True, "cells": []}

    query = protocol.MatrixQuery(
        benchmarks=("gzip",), widths=(8,), archs=("stream",),
        layouts=(True,), instructions=1000, warmup=100, scale=0.3,
    )
    spy = Spy()
    spy.matrix(query)
    assert captured == [DEFAULT_MATRIX_TIMEOUT]
    spy.matrix(protocol.MatrixQuery(
        benchmarks=("gzip",), widths=(8,), archs=("stream",),
        layouts=(True,), instructions=1000, warmup=100, scale=0.3,
        deadline=5.0,
    ))
    assert captured[1] == pytest.approx(35.0)  # deadline + slack
