"""The ``python -m repro.store.remote selftest`` smoke command."""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

from repro.store.remote.__main__ import CHECKS, main

REPO_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(__file__))), "src"
)


def test_scenarios_cover_the_degradation_ladder():
    names = [name for name, _ in CHECKS]
    assert names == [
        "all-peers-down",
        "version-skew",
        "garbage-payload",
        "kill-mid-get",
        "partition-heal",
        "fleet-read-through",
    ]


def test_help_scenarios_lists_them(capsys):
    assert main(["selftest", "--help-scenarios"]) == 0
    out = capsys.readouterr().out.split()
    assert out == [name for name, _ in CHECKS]


def test_unknown_scenario_exits_2(capsys):
    assert main(["selftest", "--only", "asteroid"]) == 2
    assert "unknown scenario" in capsys.readouterr().err


def test_no_subcommand_exits_2(capsys):
    assert main([]) == 2
    assert "usage" in capsys.readouterr().err


@pytest.mark.faults(timeout=300)
def test_selftest_single_scenario_subprocess():
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    env.pop("REPRO_FAULTS", None)
    env.pop("REPRO_STORE_PEERS", None)
    proc = subprocess.run(
        [sys.executable, "-m", "repro.store.remote", "selftest",
         "--only", "all-peers-down"],
        capture_output=True, text=True, timeout=280, env=env,
    )
    assert proc.returncode == 0, proc.stderr + proc.stdout
    assert "all-peers-down... ok" in proc.stdout
    assert "1 scenario(s) passed" in proc.stdout
