"""ArtifactStore: round trips, corruption tolerance, gc, concurrency."""

import hashlib
import json
import multiprocessing
import os

import pytest

from repro.store.store import ArtifactStore

FP = "ab" * 32


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(str(tmp_path / "store"))


class TestRoundTrip:
    def test_put_get(self, store):
        oid = store.put("result", FP, b"payload", meta={"n": 1})
        assert store.get("result", FP) == b"payload"
        assert store.get_entry("result", FP)["meta"] == {"n": 1}
        assert oid == hashlib.sha256(b"payload").hexdigest()

    def test_missing_is_none(self, store):
        assert store.get("result", FP) is None
        assert store.get_entry("result", FP) is None

    def test_kinds_are_namespaced(self, store):
        store.put("result", FP, b"a")
        assert store.get("trace", FP) is None

    def test_rewrite_wins(self, store):
        store.put("result", FP, b"old")
        store.put("result", FP, b"new")
        assert store.get("result", FP) == b"new"

    def test_identical_content_shares_object(self, store):
        oid1 = store.put("result", FP, b"same")
        oid2 = store.put("result", "cd" * 32, b"same")
        assert oid1 == oid2
        assert store.stats()["objects"] == 1


class TestCorruption:
    def _object_path(self, store, kind=FP):
        entry = store.get_entry("result", kind)
        return store._object_path(entry["object"])

    def test_truncated_object_is_a_miss(self, store):
        store.put("result", FP, b"x" * 1000)
        path = self._object_path(store)
        with open(path, "rb") as fh:
            data = fh.read()
        with open(path, "wb") as fh:
            fh.write(data[:100])
        assert store.get("result", FP) is None

    def test_tampered_object_is_a_miss(self, store):
        store.put("result", FP, b"x" * 100)
        path = self._object_path(store)
        with open(path, "r+b") as fh:
            fh.write(b"Y")
        assert store.get("result", FP) is None

    def test_garbage_index_entry_is_a_miss(self, store):
        store.put("result", FP, b"x")
        with open(store._index_path("result", FP), "w") as fh:
            fh.write("{not json")
        assert store.get("result", FP) is None
        assert store.get_entry("result", FP) is None

    def test_malformed_entry_fields_are_bad_entries(self, store):
        """Parseable JSON with wrong field types degrades to a miss
        (and a bad_entries count), never a crash downstream."""
        store.put("result", FP, b"x", meta={"n_blocks": 3})
        path = store._index_path("result", FP)
        with open(path) as fh:
            entry = json.load(fh)
        for field, value in (("size", None), ("size", "big"),
                             ("meta", None), ("object", 7)):
            bad = dict(entry, **{field: value})
            with open(path, "w") as fh:
                json.dump(bad, fh)
            assert store.get_entry("result", FP) is None, (field, value)
            assert store.get("result", FP) is None
        assert store.stats()["bad_entries"] == 1

    def test_verify_reports_corruption(self, store):
        store.put("result", FP, b"x" * 1000)
        store.put("trace", "cd" * 32, b"y" * 1000)
        path = self._object_path(store)
        with open(path, "wb") as fh:
            fh.write(b"trunc")
        report = store.verify()
        assert report["checked"] == 2
        assert len(report["corrupt_objects"]) == 1
        # The entry for the corrupt object now dangles too.
        assert ("result", FP) in report["dangling_entries"]

    def test_put_heals_corrupt_object(self, store):
        """Recomputation after a corrupt hit must repair the object,
        not leave a permanently-missing key behind."""
        store.put("result", FP, b"x" * 1000)
        path = self._object_path(store)
        with open(path, "wb") as fh:
            fh.write(b"rotten")
        assert store.get("result", FP) is None  # miss -> caller recomputes
        store.put("result", FP, b"x" * 1000)    # ...and re-stores
        assert store.get("result", FP) == b"x" * 1000
        assert store.verify()["corrupt_objects"] == []

    def test_verify_clean_store(self, store):
        store.put("result", FP, b"x")
        report = store.verify()
        assert report["corrupt_objects"] == []
        assert report["dangling_entries"] == []
        assert report["bad_entries"] == []


class TestGc:
    @staticmethod
    def _make_orphan(store, aged=True):
        """An intact object no index entry references."""
        orphan = hashlib.sha256(b"orphan").hexdigest()
        path = store._object_path(orphan)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "wb") as fh:
            fh.write(b"orphan")
        if aged:
            os.utime(path, (1, 1))
        return path

    def test_orphan_objects_are_dropped(self, store):
        store.put("result", FP, b"live")
        path = self._make_orphan(store)
        report = store.gc()
        assert report["deleted_objects"] == 1
        assert not os.path.exists(path)
        assert store.get("result", FP) == b"live"

    def test_fresh_intact_orphans_survive(self, store):
        """A young intact orphan may be a racing put() whose index
        entry has not landed yet; gc must leave it for a later pass."""
        path = self._make_orphan(store, aged=False)
        report = store.gc()
        assert report["deleted_objects"] == 0
        assert os.path.exists(path)

    def test_dry_run_deletes_nothing(self, store):
        path = self._make_orphan(store)
        report = store.gc(dry_run=True)
        assert report["deleted_objects"] == 1
        assert os.path.exists(path)

    def test_size_cap_evicts_oldest_first(self, store):
        for i in range(4):
            fp = f"{i:02d}" * 32
            store.put("result", fp, bytes([i]) * 1000)
            # Order eviction by index mtime, oldest first.
            os.utime(store._index_path("result", fp), (i, i))
        report = store.gc(max_bytes=2000)
        assert report["evicted_entries"] == 2
        # Cap-evicted objects are reclaimed immediately (no racing-
        # writer grace: this pass itself removed their entries).
        assert report["deleted_objects"] == 2
        assert report["freed_bytes"] == 2000
        assert store.get("result", "00" * 32) is None
        assert store.get("result", "01" * 32) is None
        assert store.get("result", "03" * 32) is not None
        assert report["live_bytes"] <= 2000

    def test_gc_reclaims_corrupt_objects_and_entries(self, store):
        """After gc, a store that verify flagged comes back clean: the
        corrupt object is deleted and its entry dropped (key goes
        cold), intact keys untouched."""
        store.put("result", FP, b"keep" * 100)
        store.put("trace", "cd" * 32, b"rot" * 100)
        entry = store.get_entry("trace", "cd" * 32)
        with open(store._object_path(entry["object"]), "wb") as fh:
            fh.write(b"rotten")
        assert len(store.verify()["corrupt_objects"]) == 1
        store.gc()
        report = store.verify()
        assert report["corrupt_objects"] == []
        assert report["dangling_entries"] == []
        assert store.get("trace", "cd" * 32) is None  # cold, not wrong
        assert store.get("result", FP) == b"keep" * 100

    def test_gc_removes_dangling_entries(self, store):
        store.put("result", FP, b"x" * 50)
        entry = store.get_entry("result", FP)
        os.unlink(store._object_path(entry["object"]))
        store.gc()
        assert store.get_entry("result", FP) is None
        assert store.verify()["dangling_entries"] == []

    def test_unreadable_entries_removed(self, store):
        os.makedirs(os.path.join(store.index_dir, "result"), exist_ok=True)
        with open(store._index_path("result", FP), "w") as fh:
            fh.write("garbage")
        store.gc()
        assert not os.path.exists(store._index_path("result", FP))

    def test_stale_tmp_files_removed(self, store):
        store.put("result", FP, b"x")
        stray = os.path.join(store.index_dir, "result", ".tmp-dead")
        with open(stray, "w") as fh:
            fh.write("partial")
        os.utime(stray, (1, 1))  # long-interrupted write
        report = store.gc()
        assert report["tmp_removed"] == 1
        assert not os.path.exists(stray)

    def test_fresh_tmp_files_survive(self, store):
        """A young temp file may be a concurrent run's in-flight
        atomic write; gc must leave it alone."""
        store.put("result", FP, b"x")
        inflight = os.path.join(store.index_dir, "result", ".tmp-live")
        with open(inflight, "w") as fh:
            fh.write("partial")
        report = store.gc()
        assert report["tmp_removed"] == 0
        assert os.path.exists(inflight)


def _racing_writer(args):
    root, fp, payload = args
    store = ArtifactStore(root)
    for _ in range(20):
        store.put("trace", fp, payload)
    return True


class TestConcurrentWriters:
    def test_one_complete_write_wins(self, store):
        """Racing writers on one key: every read afterwards sees one
        complete, hash-consistent object — never a torn write."""
        payloads = [bytes([i]) * 4096 for i in range(4)]
        ctx = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods()
            else None
        )
        with ctx.Pool(4) as pool:
            results = pool.map(
                _racing_writer,
                [(store.root, FP, payload) for payload in payloads],
            )
        assert all(results)
        data = store.get("trace", FP)
        assert data in payloads
        report = store.verify()
        assert report["corrupt_objects"] == []
        assert report["bad_entries"] == []

    def test_stats_counts(self, store):
        store.put("program", FP, b"p" * 10)
        store.put("result", "cd" * 32, b"r" * 20)
        stats = store.stats()
        assert stats["kinds"]["program"]["entries"] == 1
        assert stats["kinds"]["result"]["entries"] == 1
        assert stats["objects"] == 2
        assert stats["orphan_objects"] == 0
