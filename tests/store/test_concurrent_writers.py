"""Concurrent writers on one cold fingerprint: one object, identical
bits.

These tests pin the two layers the ``repro.serve`` scheduler's
coalescing relies on:

* the **store** layer — two threads or processes computing the same
  cold fingerprint concurrently yield exactly one object on disk, and
  both sides load bit-identical values afterwards (content addressing
  plus atomic writes: whichever complete write wins, it is the same
  bytes);
* the **pending registry** — within one process, the first claimant of
  an in-flight fingerprint owns the computation and all later
  claimants subscribe to the same cell, so concurrent identical
  requests cost one simulation, not N.
"""

from __future__ import annotations

import multiprocessing
import threading

from helpers import result_digest

from repro.experiments.runner import run_matrix
from repro.store import ArtifactStore, PendingRegistry
from repro.store.serialize import dump_result, load_result

BENCHES = ("gzip",)
KWARGS = dict(widths=(8,), archs=("stream",), layouts=(True,),
              instructions=6_000, warmup=2_000, scale=0.3)


# ----------------------------------------------------------------------
# store-level dedup
# ----------------------------------------------------------------------
def test_racing_thread_puts_one_object_identical_loads(tmp_path):
    store = ArtifactStore(str(tmp_path / "store"))
    fp = "ab" * 32
    data = b"payload-bytes" * 100
    barrier = threading.Barrier(4)
    oids = []

    def writer():
        barrier.wait()
        oids.append(store.put("result", fp, data))

    threads = [threading.Thread(target=writer) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=30)
    assert len(set(oids)) == 1
    stats = store.stats()
    assert stats["objects"] == 1
    assert stats["orphan_objects"] == 0
    assert store.get("result", fp) == data
    assert store.verify()["corrupt_objects"] == []


def _matrix_child(root: str, conn) -> None:
    matrix = run_matrix(BENCHES, **KWARGS, store=root)
    digests = {
        repr(spec): result_digest(res) for spec, res in
        matrix.results.items()
    }
    conn.send(digests)
    conn.close()


def test_two_processes_same_cold_cell_one_object(tmp_path):
    """Two processes race the same cold cell end to end.

    Both simulate (cross-process coalescing is out of scope — the
    registry is per-process), but the store must end up with exactly
    one result object per cell, no orphans or corruption, and both
    processes' results must be bit-identical to each other and to a
    fresh local load from the store.
    """
    root = str(tmp_path / "store")
    ctx = multiprocessing.get_context()
    pipes, procs = [], []
    for _ in range(2):
        parent, child = ctx.Pipe()
        proc = ctx.Process(target=_matrix_child, args=(root, child))
        proc.start()
        child.close()
        pipes.append(parent)
        procs.append(proc)
    digests = [pipe.recv() for pipe in pipes]
    for proc in procs:
        proc.join(timeout=300)
        assert proc.exitcode == 0
    assert digests[0] == digests[1]

    store = ArtifactStore(root)
    stats = store.stats()
    n_cells = 1  # 1 bench x 1 layout x 1 width x 1 arch
    assert stats["kinds"]["result"]["entries"] == n_cells
    report = store.verify()
    assert report["corrupt_objects"] == []
    assert report["dangling_entries"] == []
    # The winning write is readable and matches what both runs computed.
    warm = run_matrix(BENCHES, **KWARGS, store=root)
    assert {repr(s): result_digest(r) for s, r in warm.results.items()} \
        == digests[0]


def test_result_roundtrip_preserves_every_compared_field(tmp_path):
    """dump -> load of one result loses nothing bit-identity compares."""
    matrix = run_matrix(BENCHES, **KWARGS)
    (result,) = matrix.results.values()
    loaded = load_result(dump_result(result))
    assert result_digest(loaded) == result_digest(result)
    assert loaded == result


# ----------------------------------------------------------------------
# pending registry semantics (what the serve scheduler relies on)
# ----------------------------------------------------------------------
def test_registry_first_claim_owns_rest_subscribe():
    reg = PendingRegistry()
    cell, owner = reg.claim("fp-1")
    assert owner and cell.subscribers == 1
    cell2, owner2 = reg.claim("fp-1")
    assert not owner2 and cell2 is cell and cell.subscribers == 2
    assert reg.coalesced == 1
    assert reg.depth() == 1
    reg.resolve("fp-1", 42)
    assert cell.settled
    assert cell.outcome() == ("ok", 42, None)
    assert reg.depth() == 0
    # A new claim after settlement starts a fresh computation.
    cell3, owner3 = reg.claim("fp-1")
    assert owner3 and cell3 is not cell


def test_registry_resolve_wakes_concurrent_waiters():
    reg = PendingRegistry()
    cell, owner = reg.claim("fp-x")
    assert owner
    seen = []

    def waiter():
        c, is_owner = reg.claim("fp-x")
        assert not is_owner
        assert c.wait(timeout=30)
        seen.append(c.outcome())
        reg.release("fp-x", c)

    threads = [threading.Thread(target=waiter) for _ in range(3)]
    for t in threads:
        t.start()
    while reg.coalesced < 3:  # all subscribed
        threading.Event().wait(0.01)
    cell.mark_started()
    reg.resolve("fp-x", "value")
    for t in threads:
        t.join(timeout=30)
    assert seen == [("ok", "value", None)] * 3


def test_registry_abandoned_unstarted_cell_is_dropped():
    reg = PendingRegistry()
    cell, owner = reg.claim("fp-a")
    assert owner
    assert reg.release("fp-a", cell) == 0
    assert cell.abandoned()
    # The registry forgot it: the next claimant owns a fresh cell.
    assert reg.depth() == 0
    cell2, owner2 = reg.claim("fp-a")
    assert owner2 and cell2 is not cell


def test_registry_started_cell_survives_abandonment():
    reg = PendingRegistry()
    cell, _ = reg.claim("fp-b")
    cell.mark_started()
    reg.release("fp-b", cell)
    assert not cell.abandoned()  # running work still resolves
    assert reg.depth() == 1
    # A late identical request coalesces onto the still-running cell.
    cell2, owner2 = reg.claim("fp-b")
    assert not owner2 and cell2 is cell
    reg.resolve("fp-b", 7)
    assert cell2.outcome() == ("ok", 7, None)


def test_registry_failure_propagates_to_subscribers():
    reg = PendingRegistry()
    cell, _ = reg.claim("fp-f")
    sub, _ = reg.claim("fp-f")
    reg.fail("fp-f", "boom")
    assert sub.wait(timeout=5)
    assert sub.outcome() == ("failed", None, "boom")
