"""CLI surface: ``--store`` on matrix commands, the ``cache`` subcommand."""

import os

import pytest

from repro.experiments.cli import main
from repro.store.store import ArtifactStore

ARGS = ["--benchmarks", "gzip", "--instructions", "3000",
        "--scale", "0.3", "--quiet"]


class TestStoreFlag:
    def test_fig9_warm_rerun_identical_output(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert main(["fig9", *ARGS, "--store", store]) == 0
        cold_out = capsys.readouterr().out
        assert main(["fig9", *ARGS, "--store", store]) == 0
        warm_out = capsys.readouterr().out
        assert warm_out == cold_out
        stats = ArtifactStore(store).stats()
        assert stats["kinds"]["result"]["entries"] == 4
        assert stats["kinds"]["program"]["entries"] == 1

    def test_env_default(self, tmp_path, monkeypatch, capsys):
        store = str(tmp_path / "envstore")
        monkeypatch.setenv("REPRO_STORE", store)
        assert main(["fig9", *ARGS]) == 0
        capsys.readouterr()
        assert os.path.isdir(store)
        assert ArtifactStore(store).stats()["kinds"]["result"]["entries"] == 4

    def test_no_store_by_default(self, tmp_path, capsys):
        # REPRO_STORE is cleared by the suite-wide fixture: without the
        # flag nothing may be written anywhere.
        assert main(["fig9", *ARGS]) == 0
        capsys.readouterr()

    def test_ignored_by_serial_sweeps(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert main(["ablations", "--benchmark", "gzip", "--instructions",
                     "2000", "--scale", "0.3", "--quiet",
                     "--store", store]) == 0
        err = capsys.readouterr().err
        assert "--store is ignored" in err
        assert not os.path.exists(store)

    def test_profile_warns_on_explicit_store(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert main(["fig9", "--benchmarks", "gzip", "--instructions",
                     "1500", "--scale", "0.3", "--profile", "stream",
                     "--store", store]) == 0
        assert "--store is ignored by --profile" in capsys.readouterr().err
        assert not os.path.exists(store)

    def test_env_store_does_not_warn_serial_sweeps(self, tmp_path,
                                                   monkeypatch, capsys):
        """$REPRO_STORE in the environment is not an explicit request;
        table1/ablations must not nag about it."""
        monkeypatch.setenv("REPRO_STORE", str(tmp_path / "envstore"))
        assert main(["ablations", "--benchmark", "gzip", "--instructions",
                     "2000", "--scale", "0.3", "--quiet"]) == 0
        assert "--store is ignored" not in capsys.readouterr().err


class TestCacheSubcommand:
    @pytest.fixture
    def populated(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        main(["fig9", *ARGS, "--store", store])
        capsys.readouterr()
        return store

    def test_requires_store(self, capsys):
        assert main(["cache", "stats"]) == 2
        assert "no store configured" in capsys.readouterr().err

    def test_stats(self, populated, capsys):
        assert main(["cache", "stats", "--store", populated]) == 0
        out = capsys.readouterr().out
        assert "result" in out and "program" in out and "objects" in out

    def test_verify_clean(self, populated, capsys):
        assert main(["cache", "verify", "--store", populated]) == 0
        assert "store is clean" in capsys.readouterr().out

    def test_verify_detects_corruption(self, populated, capsys):
        store = ArtifactStore(populated)
        oid, path = next(iter(store.iter_objects()))
        with open(path, "wb") as fh:
            fh.write(b"bad")
        assert main(["cache", "verify", "--store", populated]) == 1
        assert "corrupt" in capsys.readouterr().out

    def test_gc_noop_on_clean_store(self, populated, capsys):
        assert main(["cache", "gc", "--store", populated]) == 0
        assert "deleted 0 objects" in capsys.readouterr().out

    def test_gc_size_cap_then_recompute(self, populated, capsys):
        """Evicting everything is safe: the next run just goes cold."""
        assert main(["cache", "gc", "--store", populated,
                     "--max-bytes", "0"]) == 0
        capsys.readouterr()
        stats = ArtifactStore(populated).stats()
        assert stats["kinds"] == {}  # every entry evicted -> all keys cold
        assert stats["objects"] == 0  # ...and their objects reclaimed
        assert main(["fig9", *ARGS, "--store", populated]) == 0
        capsys.readouterr()
        assert ArtifactStore(populated).stats()[
            "kinds"]["result"]["entries"] == 4

    def test_gc_journal_days_overrides_30_day_rule(self, populated,
                                                   capsys, monkeypatch):
        """``--journal-days N`` prunes abandoned journals younger than
        the hardcoded 30-day default (and 0 prunes immediately)."""
        import time

        from repro.exec.journal import SweepJournal

        store = ArtifactStore(populated)
        # An incomplete (abandoned) sweep journal: 1 of 5 cells done.
        journal = SweepJournal(store, "f" * 64, cells=5)
        journal.append("a" * 64)
        path = store.journal_path("f" * 64)
        # Age it two days: the default 30-day rule must keep it...
        two_days_ago = time.time() - 2 * 86400
        os.utime(path, (two_days_ago, two_days_ago))
        assert main(["cache", "gc", "--store", populated]) == 0
        assert "0 sweep journals" in capsys.readouterr().out
        assert os.path.exists(path)
        # ...a --journal-days 1 override prunes it.
        assert main(["cache", "gc", "--store", populated,
                     "--journal-days", "1"]) == 0
        assert "1 sweep journals" in capsys.readouterr().out
        assert not os.path.exists(path)
