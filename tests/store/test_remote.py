"""Federated store: wire ops, client taxonomy, tiered read-through,
write-behind replication, corruption mirrors, anti-entropy sync.

The daemon-backed tests spin a real in-process ``ExperimentServer``
(socket and all); the corruption tests tear real object files and
assert the remote tier degrades to clean misses that self-heal on the
next replication pass — never to wrong bytes.
"""

from __future__ import annotations

import base64
import hashlib
import json
import socket
import threading
from types import SimpleNamespace

import pytest

from repro.cluster.health import DEAD, HEALTHY, HealthPolicy
from repro.exec.faults import FaultSpec, active_plan
from repro.serve import protocol
from repro.serve.server import ExperimentServer
from repro.store.remote import parse_peers, version_salt
from repro.store.remote import ops
from repro.store.remote.client import (
    RemoteStoreClient,
    RemoteStoreError,
    StoreIntegrityError,
    StorePeerUnusable,
    StoreVersionSkew,
)
from repro.store.remote.sync import sync_with_peers
from repro.store.remote.tiered import TieredStore
from repro.store.store import ArtifactStore

FP = "ab" * 32
FP2 = "cd" * 32
FP3 = "ef" * 32

#: Breakers that trip fast and probe fast — unit-test scale.
FAST_HEALTH = HealthPolicy(
    suspect_after=1, dead_after=2,
    probe_backoff=0.05, probe_backoff_max=0.1, probe_jitter=0.0,
)


def _dead_port() -> int:
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return port


def _tear_object(store: ArtifactStore, kind: str, fp: str) -> None:
    """Truncate the object file behind an index entry."""
    entry = store.get_entry(kind, fp)
    path = store._object_path(entry["object"])
    with open(path, "rb") as fh:
        data = fh.read()
    with open(path, "wb") as fh:
        fh.write(data[: len(data) // 2])


def _serve_canned(response: dict) -> int:
    """One-shot peer: accept, read the request line, answer
    ``response`` as one frame, close.  Returns the port."""
    server = socket.socket()
    server.bind(("127.0.0.1", 0))
    server.listen(1)
    port = server.getsockname()[1]

    def run() -> None:
        conn, _ = server.accept()
        try:
            with conn.makefile("rwb") as stream:
                stream.readline()
                stream.write(json.dumps(response).encode() + b"\n")
                stream.flush()
        finally:
            conn.close()
            server.close()

    threading.Thread(target=run, daemon=True).start()
    return port


@pytest.fixture
def peer(tmp_path):
    """A real daemon with a store, plus direct disk access to it."""
    root = str(tmp_path / "peer-store")
    server = ExperimentServer(store_root=root, max_workers=1)
    server.start()
    host, port = server.address
    handle = SimpleNamespace(
        server=server,
        address=f"{host}:{port}",
        store=ArtifactStore(root),
    )
    yield handle
    server.stop(timeout=30)


@pytest.fixture
def local(tmp_path):
    return ArtifactStore(str(tmp_path / "local-store"))


# ----------------------------------------------------------------------
# parse_peers
# ----------------------------------------------------------------------
class TestParsePeers:
    def test_none_and_empty(self):
        assert parse_peers(None) == []
        assert parse_peers("") == []
        assert parse_peers([]) == []
        assert parse_peers(" , ,") == []

    def test_comma_string_and_sequence_agree(self):
        want = ["10.0.0.1:4000", "10.0.0.2:4001"]
        assert parse_peers("10.0.0.1:4000, 10.0.0.2:4001") == want
        assert parse_peers(("10.0.0.1:4000", "10.0.0.2:4001")) == want

    def test_duplicates_dropped_order_kept(self):
        assert parse_peers("b:2,a:1,b:2") == ["b:2", "a:1"]

    def test_junk_raises(self):
        with pytest.raises(ValueError):
            parse_peers("not an address")


# ----------------------------------------------------------------------
# server-side ops (no sockets)
# ----------------------------------------------------------------------
class TestOps:
    def _msg(self, op, **fields):
        message = {"op": op, "version": version_salt()}
        message.update(fields)
        return message

    def test_no_store_is_typed(self):
        out = ops.handle(None, self._msg("store_get", kind="result", fp=FP))
        assert out["ok"] is False and out["error"] == "no_store"

    def test_missing_version_is_protocol_error(self, local):
        with pytest.raises(protocol.ProtocolError, match="version"):
            ops.handle(local, {"op": "store_get", "kind": "result",
                               "fp": FP})

    def test_version_skew_carries_our_salt(self, local):
        out = ops.handle(local, {"op": "store_has", "version": "other",
                                 "kind": "result", "fps": []})
        assert out["error"] == "version_skew"
        assert out["version"] == version_salt()

    def test_has_batched(self, local):
        local.put("result", FP, b"one")
        local.put("result", FP2, b"two")
        out = ops.handle(local, self._msg(
            "store_has", kind="result", fps=[FP, FP2, FP3]))
        assert set(out["oids"]) == {FP, FP2}
        assert out["oids"][FP] == hashlib.sha256(b"one").hexdigest()

    def test_has_null_fps_lists_the_kind(self, local):
        local.put("result", FP, b"one")
        local.put("trace", FP2, b"two")
        out = ops.handle(local, self._msg(
            "store_has", kind="result", fps=None))
        assert list(out["oids"]) == [FP]

    def test_get_roundtrip(self, local):
        oid = local.put("result", FP, b"payload", meta={"n": 1})
        out = ops.handle(local, self._msg("store_get", kind="result",
                                          fp=FP))
        assert out["found"] and out["oid"] == oid
        assert base64.b64decode(out["data"]) == b"payload"
        assert out["meta"] == {"n": 1}

    def test_get_missing_is_a_miss(self, local):
        out = ops.handle(local, self._msg("store_get", kind="result",
                                          fp=FP))
        assert out["ok"] and out["found"] is False

    def test_get_torn_object_is_a_miss_never_a_lie(self, local):
        local.put("result", FP, b"x" * 1000)
        _tear_object(local, "result", FP)
        out = ops.handle(local, self._msg("store_get", kind="result",
                                          fp=FP))
        assert out["ok"] and out["found"] is False

    def test_put_roundtrip(self, local):
        oid = hashlib.sha256(b"pushed").hexdigest()
        out = ops.handle(local, self._msg(
            "store_put", kind="result", fp=FP, oid=oid,
            data=base64.b64encode(b"pushed").decode(), meta={"m": 2}))
        assert out["ok"] and out["oid"] == oid
        assert local.get("result", FP) == b"pushed"
        assert local.get_entry("result", FP)["meta"] == {"m": 2}

    def test_put_oid_mismatch_is_integrity(self, local):
        out = ops.handle(local, self._msg(
            "store_put", kind="result", fp=FP, oid="0" * 64,
            data=base64.b64encode(b"pushed").decode()))
        assert out["error"] == "integrity"
        assert local.get("result", FP) is None

    def test_put_undecodable_payload_is_integrity(self, local):
        out = ops.handle(local, self._msg(
            "store_put", kind="result", fp=FP, oid="0" * 64,
            data="!!! not base64 !!!"))
        assert out["error"] == "integrity"

    def test_bad_kind_is_protocol_error(self, local):
        with pytest.raises(protocol.ProtocolError, match="kind"):
            ops.handle(local, self._msg("store_get", kind="", fp=FP))


# ----------------------------------------------------------------------
# client <-> daemon over a real socket
# ----------------------------------------------------------------------
class TestClientServer:
    def test_hello_learns_frame_limit_and_version(self, peer):
        client = RemoteStoreClient(peer.address)
        response = client.hello()
        assert response["ok"]
        assert client.max_frame == protocol.MAX_LINE_BYTES
        assert response["store_version"] == version_salt()

    def test_put_get_has_roundtrip(self, peer):
        client = RemoteStoreClient(peer.address)
        oid = client.put("result", FP, b"federated", meta={"k": 1})
        assert peer.store.get("result", FP) == b"federated"
        assert client.has("result", [FP, FP2]) == {FP: oid}
        got = client.get("result", FP)
        assert got == (oid, b"federated", {"k": 1})
        assert client.get("result", FP2) is None

    def test_version_skew_is_typed_with_peer_salt(self, peer):
        client = RemoteStoreClient(peer.address, version="bogus")
        with pytest.raises(StoreVersionSkew) as err:
            client.get("result", FP)
        assert err.value.peer_version == version_salt()

    def test_storeless_daemon_is_unusable(self):
        with ExperimentServer(max_workers=1) as server:
            host, port = server.address
            client = RemoteStoreClient(f"{host}:{port}")
            with pytest.raises(StorePeerUnusable):
                client.get("result", FP)

    def test_refused_connection_is_transport(self):
        client = RemoteStoreClient(f"127.0.0.1:{_dead_port()}",
                                   connect_retries=0)
        with pytest.raises(RemoteStoreError, match="no store peer"):
            client.get("result", FP)

    def test_net_garbage_fault_is_transport(self, peer):
        peer.store.put("result", FP, b"payload")
        client = RemoteStoreClient(peer.address)
        # Garble the client's own store_get request frame: the daemon
        # answers bad_request, surfaced as a transport-class error.
        with active_plan(FaultSpec("net_garbage", match="store_get",
                                   times=1)):
            with pytest.raises(RemoteStoreError):
                client.get("result", FP)
        # The plan is spent: the very next call works.
        assert client.get("result", FP)[1] == b"payload"

    def test_lying_peer_payload_is_integrity(self):
        # A peer that serves bytes which do not hash to the claimed
        # oid: the client must refuse them, typed, before they are
        # ever visible.
        port = _serve_canned({
            "ok": True, "op": "store_get", "kind": "result", "fp": FP,
            "found": True, "oid": "0" * 64, "size": 4,
            "meta": {}, "data": base64.b64encode(b"evil").decode(),
        })
        client = RemoteStoreClient(f"127.0.0.1:{port}",
                                   connect_retries=0)
        with pytest.raises(StoreIntegrityError, match="hashes to"):
            client.get("result", FP)

    def test_undecodable_payload_is_integrity(self):
        port = _serve_canned({
            "ok": True, "op": "store_get", "kind": "result", "fp": FP,
            "found": True, "oid": "0" * 64, "size": 4,
            "meta": {}, "data": "!!! not base64 !!!",
        })
        client = RemoteStoreClient(f"127.0.0.1:{port}",
                                   connect_retries=0)
        with pytest.raises(StoreIntegrityError, match="undecodable"):
            client.get("result", FP)

    def test_oversized_put_refused_client_side(self, peer):
        client = RemoteStoreClient(peer.address)
        client.max_frame = 1024  # as if hello() learned a small cap
        with pytest.raises(RemoteStoreError, match="frame limit"):
            client.put("result", FP, b"x" * 4096)
        assert peer.store.get("result", FP) is None

    def test_oversized_put_bounces_with_typed_error(self, tmp_path):
        # Against a daemon that actually enforces a small frame cap
        # (and a client that never learned it): the wire answers the
        # typed frame_too_large error, not a hang or a cut connection.
        root = str(tmp_path / "capped-store")
        with ExperimentServer(store_root=root, max_workers=1,
                              max_frame_bytes=2048) as server:
            host, port = server.address
            client = RemoteStoreClient(f"{host}:{port}")
            with pytest.raises(RemoteStoreError, match="frame_too_large"):
                client.put("result", FP, b"x" * 8192)


# ----------------------------------------------------------------------
# TieredStore: read-through, write-behind, degradation
# ----------------------------------------------------------------------
class TestTieredStore:
    def _tier(self, tmp_path, peers, **kwargs):
        kwargs.setdefault("health_policy", FAST_HEALTH)
        kwargs.setdefault("replicate_async", False)
        return TieredStore(str(tmp_path / "tier"), peers, **kwargs)

    def test_no_peers_behaves_like_plain_store(self, tmp_path):
        tier = self._tier(tmp_path, None)
        assert tier.peers == ()
        tier.put("result", FP, b"solo")
        assert tier.get("result", FP) == b"solo"
        assert tier.get("result", FP2) is None
        assert tier.remote_stats()["peers"] == []

    def test_read_through_fills_locally(self, peer, tmp_path):
        oid = peer.store.put("result", FP, b"remote bytes", {"m": 1})
        tier = self._tier(tmp_path, peer.address)
        assert tier.get("result", FP) == b"remote bytes"
        assert tier.peers[0].hits == 1
        # The fill landed through the atomic-put path: a plain store
        # over the same root serves it with the same oid and meta.
        landed = ArtifactStore(tier.root)
        assert landed.get("result", FP) == b"remote bytes"
        entry = landed.get_entry("result", FP)
        assert entry["object"] == oid and entry["meta"] == {"m": 1}
        # Second read is local: no second remote hit.
        assert tier.get("result", FP) == b"remote bytes"
        assert tier.peers[0].hits == 1

    def test_write_behind_replicates(self, peer, tmp_path):
        tier = self._tier(tmp_path, peer.address)
        tier.put("result", FP, b"local first", {"m": 2})
        assert peer.store.get("result", FP) is None  # not yet pushed
        assert tier.flush_replication(timeout=10)
        assert peer.store.get("result", FP) == b"local first"
        assert peer.store.get_entry("result", FP)["meta"] == {"m": 2}
        assert tier.peers[0].replicated == 1

    def test_replication_overflow_drops_oldest(self, peer, tmp_path):
        tier = self._tier(tmp_path, peer.address, replication_limit=2)
        fps = [f"{i:02x}" * 32 for i in range(4)]
        for i, fp in enumerate(fps):
            tier.put("result", fp, b"v%d" % i)
        stats = tier.remote_stats()["replication"]
        assert stats["backlog"] == 2 and stats["dropped"] == 2
        assert tier.flush_replication(timeout=10)
        # Newest writes won; the dropped oldest two never made it.
        assert peer.store.get("result", fps[3]) == b"v3"
        assert peer.store.get("result", fps[2]) == b"v2"
        assert peer.store.get("result", fps[0]) is None
        assert peer.store.get("result", fps[1]) is None

    def test_torn_remote_object_is_a_clean_miss_then_self_heals(
            self, peer, tmp_path):
        # Satellite drill: the peer's object file is torn on disk.
        peer.store.put("result", FP, b"y" * 1000)
        _tear_object(peer.store, "result", FP)
        tier = self._tier(tmp_path, peer.address)
        # Clean miss — no exception, no wrong bytes, no health strike.
        assert tier.get("result", FP) is None
        assert tier.peers[0].misses == 1
        assert tier.peers[0].health.state == HEALTHY
        # "Recompute" locally and let write-behind re-put: the peer's
        # torn object is healed by its own store.put path.
        tier.put("result", FP, b"y" * 1000)
        assert tier.flush_replication(timeout=10)
        assert peer.store.get("result", FP) == b"y" * 1000

    def test_lying_peer_quarantines_without_health_strike(self, tmp_path):
        port = _serve_canned({
            "ok": True, "op": "store_get", "kind": "result", "fp": FP,
            "found": True, "oid": "0" * 64, "size": 4,
            "meta": {}, "data": base64.b64encode(b"evil").decode(),
        })
        tier = self._tier(tmp_path, f"127.0.0.1:{port}")
        assert tier.get("result", FP) is None  # miss, never wrong bytes
        peer = tier.peers[0]
        assert peer.integrity == 1
        assert peer.errors == 0
        assert peer.health.state == HEALTHY  # transport demonstrably works

    def test_dead_peer_trips_breaker_then_local_only(self, tmp_path):
        tier = self._tier(
            tmp_path, f"127.0.0.1:{_dead_port()}", connect_timeout=0.5)
        for fp in (FP, FP2, FP3):
            assert tier.get("result", fp) is None
        peer = tier.peers[0]
        assert peer.errors >= FAST_HEALTH.dead_after
        assert peer.health.state == DEAD
        # Local writes and reads keep working, bit-identically to a
        # peerless store.
        tier.put("result", FP, b"still fine")
        assert tier.get("result", FP) == b"still fine"

    def test_version_skew_marks_peer_unusable_once(self, peer, tmp_path):
        peer.store.put("result", FP, b"unreachable generation")
        tier = self._tier(tmp_path, peer.address, version="bogus-test")
        with pytest.warns(RuntimeWarning, match="version"):
            assert tier.get("result", FP) is None
        assert tier.peers[0].unusable
        # Never asked again: no further traffic, still a local miss.
        assert tier.get("result", FP2) is None
        assert tier.peers[0].hits == 0


# ----------------------------------------------------------------------
# anti-entropy sync
# ----------------------------------------------------------------------
class TestSync:
    def test_push_fills_the_peer(self, peer, local):
        local.put("result", FP, b"a", {"m": 1})
        local.put("trace", FP2, b"b")
        rows = sync_with_peers(local, peer.address, direction="push")
        (row,) = rows
        assert row["pushed"] == 2 and row["errors"] == 0
        assert row["skipped"] is None
        assert peer.store.get("result", FP) == b"a"
        assert peer.store.get_entry("result", FP)["meta"] == {"m": 1}
        assert peer.store.get("trace", FP2) == b"b"
        # Idempotent: a second pass finds nothing to move.
        (row,) = sync_with_peers(local, peer.address, direction="push")
        assert row["pushed"] == 0

    def test_pull_fills_the_local_store(self, peer, local):
        peer.store.put("result", FP, b"remote", {"m": 3})
        (row,) = sync_with_peers(local, peer.address, direction="pull")
        assert row["pulled"] == 1 and row["errors"] == 0
        assert local.get("result", FP) == b"remote"
        assert local.get_entry("result", FP)["meta"] == {"m": 3}

    def test_both_converges_disjoint_stores(self, peer, local):
        local.put("result", FP, b"mine")
        peer.store.put("result", FP2, b"theirs")
        (row,) = sync_with_peers(local, peer.address, direction="both")
        assert row["pulled"] == 1 and row["pushed"] == 1
        assert local.get("result", FP2) == b"theirs"
        assert peer.store.get("result", FP) == b"mine"

    def test_existing_entries_never_overwritten(self, peer, local):
        local.put("result", FP, b"local truth")
        peer.store.put("result", FP, b"remote truth")
        (row,) = sync_with_peers(local, peer.address, direction="both")
        assert row["pulled"] == 0 and row["pushed"] == 0
        assert local.get("result", FP) == b"local truth"
        assert peer.store.get("result", FP) == b"remote truth"

    def test_torn_local_object_is_never_pushed(self, peer, local):
        local.put("result", FP, b"z" * 1000)
        _tear_object(local, "result", FP)
        (row,) = sync_with_peers(local, peer.address, direction="push")
        assert row["pushed"] == 0
        assert peer.store.get("result", FP) is None

    def test_unreachable_peer_is_skipped_whole(self, local):
        local.put("result", FP, b"a")
        (row,) = sync_with_peers(
            local, f"127.0.0.1:{_dead_port()}", direction="both")
        assert row["skipped"] is not None
        assert row["pulled"] == 0 and row["pushed"] == 0

    def test_bad_direction_raises(self, local):
        with pytest.raises(ValueError, match="direction"):
            sync_with_peers(local, "127.0.0.1:1", direction="sideways")
