"""Incremental ``run_matrix``: warm == cold, bit for bit.

The store is a shortcut, never an approximation: a warm run must return
a RunMatrixResult identical to the cold/serial path (all counters, all
stat dicts), skip simulation for cached cells, and fall back to
recomputation — never a wrong result — when the store is damaged.
"""

from helpers import result_digest

import pytest

import repro.experiments.runner as runner_mod
from repro.experiments.runner import ProgramCache, run_matrix
from repro.isa.trace import TraceRecord
from repro.isa.workloads import prepare_program, ref_trace_seed
from repro.store import ArtifactCache, ArtifactStore, serialize
from repro.store.fingerprint import program_fingerprint, trace_fingerprint

BENCHES = ("gzip",)
KWARGS = dict(widths=(8,), instructions=8_000, warmup=2_000, scale=0.3)
N_CELLS = 1 * 2 * 1 * 4  # bench x layout x width x arch


def matrices_identical(a, b):
    assert list(a.results) == list(b.results)
    for spec in a.results:
        assert result_digest(a.results[spec]) == \
            result_digest(b.results[spec]), spec
    return True


@pytest.fixture(scope="module")
def reference_matrix():
    """The storeless serial path: the ground truth."""
    return run_matrix(BENCHES, **KWARGS)


@pytest.fixture
def counted_run_cell(monkeypatch):
    """Counts actual cell simulations (cache hits bypass _run_cell)."""
    calls = []
    original = runner_mod._run_cell

    def counting(*args, **kwargs):
        calls.append(args)
        return original(*args, **kwargs)

    monkeypatch.setattr(runner_mod, "_run_cell", counting)
    return calls


class TestColdWarmBitIdentity:
    def test_serial(self, tmp_path, reference_matrix, counted_run_cell):
        store = str(tmp_path / "store")
        cold = run_matrix(BENCHES, **KWARGS, store=store)
        assert matrices_identical(reference_matrix, cold)
        assert len(counted_run_cell) == N_CELLS

        warm = run_matrix(BENCHES, **KWARGS, store=store)
        assert matrices_identical(reference_matrix, warm)
        # Every cell was a cache hit: zero new simulations.
        assert len(counted_run_cell) == N_CELLS

    def test_parallel(self, tmp_path, reference_matrix):
        store = str(tmp_path / "store")
        cold = run_matrix(BENCHES, **KWARGS, store=store, jobs=2)
        assert matrices_identical(reference_matrix, cold)
        warm = run_matrix(BENCHES, **KWARGS, store=store, jobs=2)
        assert matrices_identical(reference_matrix, warm)

    def test_serial_warm_after_parallel_cold(self, tmp_path,
                                             reference_matrix,
                                             counted_run_cell):
        """The two paths share one cache: parallel populates, serial
        hits (and vice versa)."""
        store = str(tmp_path / "store")
        run_matrix(BENCHES, **KWARGS, store=store, jobs=2)
        warm = run_matrix(BENCHES, **KWARGS, store=store)
        assert matrices_identical(reference_matrix, warm)
        assert len(counted_run_cell) == 0

    def test_progress_fires_in_serial_order_when_warm(self, tmp_path,
                                                      reference_matrix):
        store = str(tmp_path / "store")
        run_matrix(BENCHES, **KWARGS, store=store)
        seen = []
        run_matrix(BENCHES, **KWARGS, store=store,
                   progress=lambda r: seen.append((r.engine, r.optimized)))
        expected = [(r.engine, r.optimized)
                    for r in reference_matrix.results.values()]
        assert seen == expected


class TestFingerprintMisses:
    def test_changed_budget_misses(self, tmp_path, counted_run_cell):
        store = str(tmp_path / "store")
        run_matrix(BENCHES, **KWARGS, store=store)
        before = len(counted_run_cell)
        changed = dict(KWARGS, instructions=12_000)
        run_matrix(BENCHES, **changed, store=store)
        assert len(counted_run_cell) == before + N_CELLS

    def test_changed_warmup_misses(self, tmp_path, counted_run_cell):
        store = str(tmp_path / "store")
        run_matrix(BENCHES, **KWARGS, store=store)
        before = len(counted_run_cell)
        changed = dict(KWARGS, warmup=3_000)
        run_matrix(BENCHES, **changed, store=store)
        assert len(counted_run_cell) == before + N_CELLS

    def test_changed_scale_misses(self, tmp_path, counted_run_cell):
        store = str(tmp_path / "store")
        run_matrix(BENCHES, **KWARGS, store=store)
        before = len(counted_run_cell)
        changed = dict(KWARGS, scale=0.4)
        run_matrix(BENCHES, **changed, store=store)
        assert len(counted_run_cell) == before + N_CELLS

    def test_subset_hits(self, tmp_path, reference_matrix, counted_run_cell):
        """A narrower matrix over the same cells is all hits."""
        store = str(tmp_path / "store")
        run_matrix(BENCHES, **KWARGS, store=store)
        before = len(counted_run_cell)
        sub = run_matrix(BENCHES, archs=("stream",), **KWARGS, store=store)
        assert len(counted_run_cell) == before
        for spec, result in sub.results.items():
            assert result_digest(result) == \
                result_digest(reference_matrix.results[spec])


class TestCorruptionFallback:
    def test_corrupt_result_recomputes_correctly(self, tmp_path,
                                                 reference_matrix,
                                                 counted_run_cell):
        store_root = str(tmp_path / "store")
        run_matrix(BENCHES, **KWARGS, store=store_root)
        before = len(counted_run_cell)
        # Truncate every result object.
        store = ArtifactStore(store_root)
        for kind, fp, entry in store.iter_index():
            if kind != "result":
                continue
            path = store._object_path(entry["object"])
            with open(path, "wb") as fh:
                fh.write(b"truncated")
        warm = run_matrix(BENCHES, **KWARGS, store=store_root)
        assert matrices_identical(reference_matrix, warm)
        assert len(counted_run_cell) == before + N_CELLS

    def test_corrupt_program_recomputes_correctly(self, tmp_path,
                                                  monkeypatch):
        store_root = str(tmp_path / "store")
        run_matrix(BENCHES, **KWARGS, store=store_root)
        store = ArtifactStore(store_root)
        for kind, fp, entry in store.iter_index():
            if kind == "program":
                path = store._object_path(entry["object"])
                with open(path, "r+b") as fh:
                    fh.seek(30)
                    fh.write(b"XXXX")
        # Fresh in-process cache, so the warm run actually reads (and
        # rejects) the corrupt image; a changed budget forces the
        # result cache to miss so the image is really needed.
        monkeypatch.setattr(runner_mod, "_WORKER_CACHE", None)
        changed = dict(KWARGS, instructions=10_000)
        ref = run_matrix(BENCHES, **changed)
        monkeypatch.setattr(runner_mod, "_WORKER_CACHE", None)
        warm = run_matrix(BENCHES, **changed, store=store_root)
        assert matrices_identical(ref, warm)

    def test_corrupt_trace_recomputes_correctly(self, tmp_path, monkeypatch):
        store_root = str(tmp_path / "store")
        run_matrix(BENCHES, **KWARGS, store=store_root)
        store = ArtifactStore(store_root)
        for kind, fp, entry in store.iter_index():
            if kind == "trace":
                path = store._object_path(entry["object"])
                with open(path, "wb") as fh:
                    fh.write(b"not a trace")
        monkeypatch.setattr(runner_mod, "_WORKER_CACHE", None)
        changed = dict(KWARGS, instructions=10_000)
        ref = run_matrix(BENCHES, **changed)
        monkeypatch.setattr(runner_mod, "_WORKER_CACHE", None)
        warm = run_matrix(BENCHES, **changed, store=store_root)
        assert matrices_identical(ref, warm)


class TestTraceArtifacts:
    def test_loaded_trace_extends_bit_identically(self, gzip_programs):
        """A record loaded from serialized state and extended past its
        saved end must match a cold walk block for block."""
        _, program = gzip_programs
        seed = ref_trace_seed("gzip")
        cold = TraceRecord(program, seed)
        for _ in range(4):
            cold.extend()

        partial = TraceRecord(
            serialize.load_program(serialize.dump_program(program)), seed
        )
        partial.extend()
        data = serialize.dump_trace(partial)
        fresh_image = serialize.load_program(serialize.dump_program(program))
        loaded = serialize.load_trace(data, fresh_image, seed)
        for _ in range(3):
            loaded.extend()

        assert len(cold.blocks) == len(loaded.blocks)
        for a, b in zip(cold.blocks, loaded.blocks):
            assert (a.addr, a.taken, a.next_addr) == \
                (b.addr, b.taken, b.next_addr)

    def test_wrong_seed_rejected(self, gzip_programs):
        _, program = gzip_programs
        record = TraceRecord(program, 123)
        record.extend()
        data = serialize.dump_trace(record)
        with pytest.raises(serialize.ArtifactDecodeError):
            serialize.load_trace(data, program, 456)

    def test_corrupt_trace_object_heals_on_resave(self, tmp_path,
                                                  gzip_programs):
        """A rotted trace object must be rewritten by the process that
        paid the re-walk — not skipped forever on its stale n_blocks
        index metadata."""
        _, program = gzip_programs
        seed = ref_trace_seed("gzip")
        fp = program_fingerprint("gzip", True, 0.4)
        root = str(tmp_path / "store")
        writer = ArtifactCache(root)
        image = serialize.load_program(serialize.dump_program(program))
        record = TraceRecord(image, seed)
        record.extend()
        image._trace_records[seed] = record
        assert writer.save_traces(image, fp) == 1
        # Rot the object bytes; the index entry (with n_blocks) survives.
        entry = writer.store.get_entry("trace", trace_fingerprint(fp, seed))
        with open(writer.store._object_path(entry["object"]), "wb") as fh:
            fh.write(b"rot")
        # A fresh process: load misses, re-walks, and the save heals.
        reader = ArtifactCache(root)
        fresh = serialize.load_program(serialize.dump_program(program))
        assert reader.load_trace(fresh, fp, seed) is False
        rewalked = TraceRecord(fresh, seed)
        rewalked.extend()
        fresh._trace_records[seed] = rewalked
        assert reader.save_traces(fresh, fp) == 1
        # The store is intact again for the next process.
        final = ArtifactCache(root)
        check = serialize.load_program(serialize.dump_program(program))
        assert final.load_trace(check, fp, seed) is True

    def test_undecodable_trace_object_heals_on_resave(self, tmp_path,
                                                      gzip_programs):
        """Hash-valid bytes that fail to decode must also heal: the
        heal check compares object ids, not mere readability."""
        _, program = gzip_programs
        seed = ref_trace_seed("gzip")
        fp = program_fingerprint("gzip", True, 0.4)
        cache = ArtifactCache(str(tmp_path / "store"))
        # Hash-valid (content-addressed) but undecodable object, with
        # index meta claiming a long stored trace.
        cache.store.put("trace", trace_fingerprint(fp, seed),
                        b"not a trace artifact",
                        meta={"seed": seed, "n_blocks": 10**9})
        image = serialize.load_program(serialize.dump_program(program))
        assert cache.load_trace(image, fp, seed) is False
        record = TraceRecord(image, seed)
        record.extend()
        image._trace_records[seed] = record
        assert cache.save_traces(image, fp) == 1
        fresh = ArtifactCache(cache.store.root)
        check = serialize.load_program(serialize.dump_program(program))
        assert fresh.load_trace(check, fp, seed) is True

    def test_save_traces_persists_longest(self, tmp_path, gzip_programs):
        _, program = gzip_programs
        fresh = serialize.load_program(serialize.dump_program(program))
        cache = ArtifactCache(str(tmp_path / "store"))
        fp = program_fingerprint("gzip", True, 0.4)
        seed = ref_trace_seed("gzip")
        record = TraceRecord(fresh, seed)
        fresh._trace_records[seed] = record
        record.extend()
        assert cache.save_traces(fresh, fp) == 1
        # Unchanged record: nothing new to write.
        assert cache.save_traces(fresh, fp) == 0
        # Grown record: rewritten.
        record.extend()
        assert cache.save_traces(fresh, fp) == 1
        entry = cache.store.get_entry("trace", trace_fingerprint(fp, seed))
        assert entry["meta"]["n_blocks"] == len(record.blocks)


class TestWriteDegradation:
    def test_unencodable_meta_warns_and_continues(self, tmp_path, capsys):
        """Store writes may never abort a run: an unencodable artifact
        or meta degrades to 'not cached' with a warning."""
        from repro.core.results import SimulationResult
        cache = ArtifactCache(str(tmp_path / "store"))
        result = SimulationResult(benchmark="b", engine="e", width=8,
                                  optimized=True, cycles=10, instructions=20)
        cache.put_result("ab" * 32, result, meta={"bad": {1, 2}})  # no raise
        assert "will not be cached" in capsys.readouterr().err
        assert cache.store.get_entry("result", "ab" * 32) is None

    def test_readonly_store_warns_once(self, tmp_path, capsys):
        import os
        import stat
        root = tmp_path / "ro"
        root.mkdir()
        os.chmod(root, stat.S_IRUSR | stat.S_IXUSR)
        if os.access(str(root / "x"), os.W_OK) or os.geteuid() == 0:
            os.chmod(root, stat.S_IRWXU)
            pytest.skip("running as root; chmod cannot make dir read-only")
        from repro.core.results import SimulationResult
        cache = ArtifactCache(str(root))
        result = SimulationResult(benchmark="b", engine="e", width=8,
                                  optimized=True, cycles=10, instructions=20)
        try:
            cache.put_result("ab" * 32, result)
            cache.put_result("cd" * 32, result)
        finally:
            os.chmod(root, stat.S_IRWXU)
        assert capsys.readouterr().err.count("will not be cached") == 1


class TestProgramCacheKeying:
    def test_keyed_on_full_fingerprint(self):
        cache = ProgramCache()
        a = cache.get("gzip", True, 0.3)
        assert cache.get("gzip", True, 0.3) is a
        assert cache._cache[program_fingerprint("gzip", True, 0.3)] is a
        b = cache.get("gzip", True, 0.35)
        assert b is not a

    def test_store_backed_cache_loads_from_disk(self, tmp_path):
        root = str(tmp_path / "store")
        # Populate from one cache...
        ArtifactCache(root).program("gzip", True, 0.3)
        # ...load from another, through a ProgramCache.
        artifacts = ArtifactCache(root)
        cache = ProgramCache(artifacts=artifacts)
        program = cache.get("gzip", True, 0.3)
        assert artifacts.hits["program"] == 1
        reference = prepare_program("gzip", optimized=True, scale=0.3)
        assert [lb.addr for lb in program.linear_blocks] == \
            [lb.addr for lb in reference.linear_blocks]
        assert [lb.size for lb in program.linear_blocks] == \
            [lb.size for lb in reference.linear_blocks]
