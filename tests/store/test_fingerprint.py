"""Fingerprint determinism and sensitivity.

A fingerprint must be stable for identical inputs and change for *any*
input that can change a result — workload seed, scale, layout, width,
machine parameter, instruction budget, trace seed.
"""

import dataclasses

import pytest

from repro.common.params import default_machine
from repro.store.fingerprint import (
    canonical,
    code_version,
    fingerprint,
    program_fingerprint,
    result_fingerprint,
    trace_fingerprint,
)


class TestCodeVersion:
    def test_hex_and_memoized(self):
        v = code_version()
        assert len(v) == 64
        int(v, 16)
        assert code_version() == v


class TestCanonical:
    def test_dataclass_carries_qualified_class_name(self):
        machine = default_machine(8)
        payload = canonical(machine)
        assert payload["__dataclass__"] == "repro.common.params.MachineParams"
        assert payload["core"]["__dataclass__"] == \
            "repro.common.params.CoreParams"

    def test_same_named_dataclasses_do_not_collide(self):
        import dataclasses as dc

        def make(module):
            @dc.dataclass
            class Config:
                x: int = 1
            Config.__module__ = module
            return Config()

        a, b = make("mod_a"), make("mod_b")
        assert fingerprint("result", a) != fingerprint("result", b)

    def test_rejects_unknown_types(self):
        with pytest.raises(TypeError):
            canonical(object())

    def test_enum_and_containers(self):
        from repro.common.types import BranchKind
        assert canonical(BranchKind.COND) == \
            ["repro.common.types.BranchKind", "COND"]
        assert canonical((1, [2.5, None])) == [1, [2.5, None]]


class TestProgramFingerprint:
    def test_stable(self):
        assert program_fingerprint("gzip", True, 0.5) == \
            program_fingerprint("gzip", True, 0.5)

    @pytest.mark.parametrize("other", [
        ("twolf", True, 0.5, 0x10000),    # different benchmark spec
        ("gzip", False, 0.5, 0x10000),    # different layout
        ("gzip", True, 0.4, 0x10000),     # different scale
        ("gzip", True, 0.5, 0x20000),            # different base address
        ("gzip", True, 0.5, 0x10000, 30_000),    # explicit profile blocks
    ])
    def test_sensitive(self, other):
        base = program_fingerprint("gzip", True, 0.5, 0x10000)
        assert program_fingerprint(*other) != base


class TestTraceFingerprint:
    def test_keyed_on_program_and_seed(self):
        fp = program_fingerprint("gzip", True, 0.5)
        assert trace_fingerprint(fp, 1) == trace_fingerprint(fp, 1)
        assert trace_fingerprint(fp, 1) != trace_fingerprint(fp, 2)
        other = program_fingerprint("gzip", False, 0.5)
        assert trace_fingerprint(fp, 1) != trace_fingerprint(other, 1)


class TestResultFingerprint:
    BASE = dict(arch="stream", width=8, instructions=10_000, warmup=3_000,
                trace_seed=42)

    def _fp(self, **overrides):
        kwargs = dict(self.BASE, **overrides)
        program_fp = kwargs.pop("program_fp",
                                program_fingerprint("gzip", True, 0.5))
        return result_fingerprint(program_fp, **kwargs)

    def test_stable(self):
        assert self._fp() == self._fp()

    @pytest.mark.parametrize("overrides", [
        {"arch": "trace"},
        {"width": 4},
        {"instructions": 20_000},
        {"warmup": 1_000},
        {"trace_seed": 43},
        {"program_fp": program_fingerprint("gzip", False, 0.5)},
    ])
    def test_sensitive_to_cell_axes(self, overrides):
        assert self._fp(**overrides) != self._fp()

    def test_sensitive_to_machine_params(self):
        machine = default_machine(8)
        tweaked = dataclasses.replace(
            machine, memory=dataclasses.replace(machine.memory, l2_latency=20)
        )
        assert self._fp(machine=machine.key_payload()) != \
            self._fp(machine=tweaked.key_payload())

    def test_machine_defaults_to_table2(self):
        assert self._fp() == self._fp(machine=default_machine(8).key_payload())


class TestEnvelope:
    def test_kind_separates_namespaces(self):
        payload = {"x": 1}
        assert fingerprint("program", payload) != fingerprint("trace", payload)

    def test_code_version_is_in_envelope(self, monkeypatch):
        import sys
        fp_mod = sys.modules["repro.store.fingerprint"]
        base = fingerprint("result", {"x": 1})
        monkeypatch.setattr(fp_mod, "_CODE_VERSION", "0" * 64)
        assert fingerprint("result", {"x": 1}) != base
