"""Tests for stream extraction (paper §1, Fig. 1) and statistics."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.types import BranchKind
from repro.isa.streams import Stream, extract_streams, stream_statistics
from repro.isa.trace import TraceWalker
from repro.isa.workloads import prepare_program, ref_trace_seed


class TestStreamInvariants:
    def test_streams_end_at_taken_branches(self, tiny_program):
        walker = TraceWalker(tiny_program, seed=3)
        dyns = [next(walker) for _ in range(600)]
        streams = list(extract_streams(iter(dyns)))
        # Sum of stream lengths equals total instructions walked.
        assert sum(s.length for s in streams) == sum(d.size for d in dyns)

    def test_stream_boundaries_match_taken(self, tiny_program):
        walker = TraceWalker(tiny_program, seed=3)
        dyns = [next(walker) for _ in range(600)]
        taken = sum(1 for d in dyns if d.taken)
        streams = list(extract_streams(iter(dyns)))
        # Every taken branch ends one stream; the tail may add one more.
        assert taken <= len(streams) <= taken + 1

    def test_stream_starts_are_branch_targets(self, tiny_program):
        walker = TraceWalker(tiny_program, seed=3)
        dyns = [next(walker) for _ in range(600)]
        streams = list(extract_streams(iter(dyns)))
        targets = {d.next_addr for d in dyns if d.taken}
        targets.add(dyns[0].addr)
        for s in streams:
            assert s.start_addr in targets

    def test_max_length_cap(self, tiny_program):
        walker = TraceWalker(tiny_program, seed=3)
        dyns = [next(walker) for _ in range(600)]
        for s in extract_streams(iter(dyns), max_length=8):
            assert s.length <= 8

    def test_capped_streams_conserve_instructions(self, tiny_program):
        walker = TraceWalker(tiny_program, seed=3)
        dyns = [next(walker) for _ in range(400)]
        uncapped = sum(s.length for s in extract_streams(iter(dyns)))
        capped = sum(
            s.length for s in extract_streams(iter(dyns), max_length=8)
        )
        assert uncapped == capped


class TestStreamDataclass:
    def test_rejects_zero_length(self):
        with pytest.raises(ValueError):
            Stream(0x1000, 0, 1, BranchKind.COND)

    def test_rejects_zero_blocks(self):
        with pytest.raises(ValueError):
            Stream(0x1000, 4, 0, BranchKind.COND)


class TestStatistics:
    def test_keys_present(self, tiny_program):
        stats = stream_statistics(TraceWalker(tiny_program, seed=3), 3000)
        for key in ("avg_stream_length", "avg_block_length",
                    "taken_fraction", "streams_per_kinstr"):
            assert key in stats

    def test_taken_fraction_bounded(self, tiny_program):
        stats = stream_statistics(TraceWalker(tiny_program, seed=3), 3000)
        assert 0.0 <= stats["taken_fraction"] <= 1.0

    def test_too_short_trace_raises(self, tiny_program):
        with pytest.raises(ValueError):
            stream_statistics(iter([]), 100)


class TestPaperClaims:
    """§3.2 / Table 1: layout optimization lengthens streams and makes
    most conditional instances not-taken."""

    def test_optimized_streams_longer(self, gzip_programs):
        base, opt = gzip_programs
        seed = ref_trace_seed("gzip")
        s_base = stream_statistics(TraceWalker(base, seed), 30000)
        s_opt = stream_statistics(TraceWalker(opt, seed), 30000)
        assert s_opt["avg_stream_length"] > 1.5 * s_base["avg_stream_length"]

    def test_optimized_mostly_not_taken(self, gzip_programs):
        base, opt = gzip_programs
        seed = ref_trace_seed("gzip")
        s_base = stream_statistics(TraceWalker(base, seed), 30000)
        s_opt = stream_statistics(TraceWalker(opt, seed), 30000)
        # Paper §3.2: optimization aligns branches towards not-taken
        # (~80% of instances not taken on the full-size workloads).
        assert s_opt["taken_fraction"] < 0.5
        assert s_opt["taken_fraction"] < 0.75 * s_base["taken_fraction"]

    def test_average_block_5_to_6(self, gzip_programs):
        base, _ = gzip_programs
        seed = ref_trace_seed("gzip")
        stats = stream_statistics(TraceWalker(base, seed), 30000)
        assert 3.5 < stats["avg_block_length"] < 8.0

    def test_optimized_streams_over_16(self, gzip_programs):
        """Paper: 'the average stream contains over 16 instructions'."""
        _, opt = gzip_programs
        seed = ref_trace_seed("gzip")
        stats = stream_statistics(TraceWalker(opt, seed), 30000)
        assert stats["avg_stream_length"] > 16.0
