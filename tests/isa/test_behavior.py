"""Tests for branch behaviour models."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa.behavior import (
    Bernoulli,
    GlobalCorrelated,
    IndirectChooser,
    LoopTrip,
    Pattern,
    PathCorrelated,
    WalkContext,
)


def sample_many(behavior, n=2000, seed=1, record=False):
    ctx = WalkContext(seed)
    out = []
    for _ in range(n):
        v = behavior.sample(ctx, key=1)
        out.append(v)
        if record:
            ctx.record_outcome(v)
    return out


class TestBernoulli:
    def test_rate_close_to_p(self):
        outcomes = sample_many(Bernoulli(0.8), 5000)
        assert 0.76 < sum(outcomes) / len(outcomes) < 0.84

    def test_extremes(self):
        assert all(sample_many(Bernoulli(1.0), 100))
        assert not any(sample_many(Bernoulli(0.0), 100))

    def test_rejects_bad_p(self):
        with pytest.raises(ValueError):
            Bernoulli(1.5)

    def test_expected_rate(self):
        assert Bernoulli(0.3).expected_true_rate() == pytest.approx(0.3)


class TestLoopTrip:
    def test_deterministic_trip(self):
        b = LoopTrip(5.0, jitter=0.0)
        outcomes = sample_many(b, 50)
        # Trip 5: pattern of four Trues then one False, repeating.
        assert outcomes[:10] == [True] * 4 + [False] + [True] * 4 + [False]

    def test_trip_one_never_continues(self):
        outcomes = sample_many(LoopTrip(1.0, jitter=0.0), 20)
        assert not any(outcomes)

    def test_mean_trip_respected(self):
        b = LoopTrip(8.0, jitter=0.3)
        outcomes = sample_many(b, 8000)
        exits = outcomes.count(False)
        mean_trip = len(outcomes) / max(exits, 1)
        assert 6.0 < mean_trip < 10.5

    def test_rejects_sub_one_trip(self):
        with pytest.raises(ValueError):
            LoopTrip(0.5)

    def test_expected_rate(self):
        assert LoopTrip(4.0).expected_true_rate() == pytest.approx(0.75)


class TestPattern:
    def test_repeats_exactly(self):
        b = Pattern([True, False, False])
        assert sample_many(b, 9) == [True, False, False] * 3

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Pattern([])

    def test_expected_rate(self):
        assert Pattern([True, False]).expected_true_rate() == 0.5


class TestGlobalCorrelated:
    def test_noiseless_is_deterministic_function_of_history(self):
        b = GlobalCorrelated(mask=0b101, noise=0.0)
        ctx1, ctx2 = WalkContext(1), WalkContext(99)
        for h in (0b000, 0b101, 0b111, 0b100):
            ctx1.global_history = h
            ctx2.global_history = h
            assert b.sample(ctx1, 1) == b.sample(ctx2, 1)

    def test_parity_semantics(self):
        b = GlobalCorrelated(mask=0b1, noise=0.0)
        ctx = WalkContext(0)
        ctx.global_history = 0b1
        assert b.sample(ctx, 1) is True
        ctx.global_history = 0b0
        assert b.sample(ctx, 1) is False

    def test_invert(self):
        b = GlobalCorrelated(mask=0b1, noise=0.0, invert=True)
        ctx = WalkContext(0)
        ctx.global_history = 0b1
        assert b.sample(ctx, 1) is False

    def test_rejects_zero_mask(self):
        with pytest.raises(ValueError):
            GlobalCorrelated(mask=0)


class TestPathCorrelated:
    def test_depends_on_path(self):
        b = PathCorrelated(depth=3, salt=5, noise=0.0)
        ctx = WalkContext(0)
        for bid in (3, 7, 9):
            ctx.record_block(bid)
        v1 = b.sample(ctx, 1)
        ctx2 = WalkContext(0)
        for bid in (3, 7, 9):
            ctx2.record_block(bid)
        assert b.sample(ctx2, 1) == v1

    def test_different_paths_can_differ(self):
        b = PathCorrelated(depth=2, salt=1, noise=0.0)
        results = set()
        for path in [(1, 2), (3, 4), (5, 6), (7, 8), (9, 10)]:
            ctx = WalkContext(0)
            for bid in path:
                ctx.record_block(bid)
            results.add(b.sample(ctx, 1))
        assert results == {True, False}


class TestIndirectChooser:
    def test_respects_weights_roughly(self):
        chooser = IndirectChooser([0.7, 0.2, 0.1])
        ctx = WalkContext(3)
        counts = [0, 0, 0]
        for _ in range(3000):
            counts[chooser.choose(ctx, 1)] += 1
        assert counts[0] > counts[1] > counts[2]

    def test_in_range(self):
        chooser = IndirectChooser([1, 1, 1, 1], phase_length=20)
        ctx = WalkContext(5)
        assert all(0 <= chooser.choose(ctx, 2) < 4 for _ in range(500))

    def test_phases_create_runs(self):
        chooser = IndirectChooser([1] * 8, phase_length=50)
        ctx = WalkContext(7)
        picks = [chooser.choose(ctx, 1) for _ in range(400)]
        # With phases, consecutive repeats are much more common than 1/8.
        repeats = sum(a == b for a, b in zip(picks, picks[1:]))
        assert repeats / len(picks) > 0.5

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            IndirectChooser([])

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            IndirectChooser([1.0, -0.5])


class TestWalkContext:
    def test_history_shift(self):
        ctx = WalkContext(0)
        ctx.record_outcome(True)
        ctx.record_outcome(False)
        assert ctx.global_history & 0b11 == 0b10

    def test_path_depth_bounded(self):
        ctx = WalkContext(0)
        for i in range(50):
            ctx.record_block(i)
        assert len(ctx.path_history) == WalkContext.PATH_DEPTH

    def test_state_isolated_per_key(self):
        ctx = WalkContext(0)
        ctx.state_for(1)["x"] = 5
        assert "x" not in ctx.state_for(2)
        assert ctx.state_for(1)["x"] == 5

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=20)
    def test_deterministic_given_seed(self, seed):
        a = sample_many(Bernoulli(0.5), 50, seed=seed)
        b = sample_many(Bernoulli(0.5), 50, seed=seed)
        assert a == b
