"""Tests for linking (layout -> program image) and instruction metadata."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.types import INSTRUCTION_BYTES, BranchKind, InstrClass
from repro.isa.behavior import Bernoulli
from repro.isa.cfg import ControlFlowGraph
from repro.isa.layout import natural_order
from repro.isa.program import link


def hammock_cfg() -> ControlFlowGraph:
    """entry -> cond -> (then | else) -> join -> jump back."""
    cfg = ControlFlowGraph()
    f = cfg.new_function("f")
    cond = cfg.new_block(f, 3, BranchKind.COND, behavior=Bernoulli(0.5))
    then = cfg.new_block(f, 4, BranchKind.NONE)
    els = cfg.new_block(f, 5, BranchKind.NONE)
    join = cfg.new_block(f, 2, BranchKind.JUMP)
    cond.succ_true = then.bid
    cond.succ_false = els.bid
    then.succ_false = join.bid
    els.succ_false = join.bid
    join.succ_true = cond.bid
    cfg.entry_bid = cond.bid
    cfg.validate()
    return cfg


class TestLinkBasics:
    def test_rejects_non_permutation(self):
        cfg = hammock_cfg()
        with pytest.raises(ValueError):
            link(cfg, [0, 1, 2])  # missing block 3

    def test_addresses_monotonic_and_contiguous(self):
        program = link(hammock_cfg(), [0, 1, 2, 3])
        addr = program.base_address
        for lb in program.linear_blocks:
            assert lb.addr == addr
            addr += lb.size * INSTRUCTION_BYTES

    def test_entry_address(self):
        program = link(hammock_cfg(), [0, 1, 2, 3], base_address=0x8000)
        assert program.entry_address == 0x8000


class TestBranchSense:
    def test_adjacent_true_successor_flips_branch(self):
        """Natural order: then (succ_true) right after cond -> flip."""
        program = link(hammock_cfg(), [0, 1, 2, 3])
        cond_lb = program.linear_blocks[0]
        assert cond_lb.kind is BranchKind.COND
        assert cond_lb.taken_means_true is False
        # Branch target must be the else block.
        els_addr = program.addr_of_bid[2]
        assert cond_lb.target_addr == els_addr

    def test_adjacent_false_successor_keeps_sense(self):
        """Order with else adjacent: no flip; target = then."""
        program = link(hammock_cfg(), [0, 2, 1, 3])
        cond_lb = program.block_starting_at(program.addr_of_bid[0])
        assert cond_lb.taken_means_true is True
        assert cond_lb.target_addr == program.addr_of_bid[1]

    def test_neither_adjacent_gets_stub(self):
        """Order [cond, join, then, else]: fall-through needs a stub."""
        program = link(hammock_cfg(), [0, 3, 1, 2])
        stubs = [lb for lb in program.linear_blocks if lb.is_stub]
        assert stubs, "expected a trampoline stub"
        stub = stubs[0]
        assert stub.kind is BranchKind.JUMP
        assert stub.size == 1
        assert stub.target_addr == program.addr_of_bid[2]  # -> else


class TestStubsForStraightline:
    def test_none_block_nonadjacent_successor(self):
        cfg = ControlFlowGraph()
        f = cfg.new_function("f")
        a = cfg.new_block(f, 3, BranchKind.NONE)
        b = cfg.new_block(f, 2, BranchKind.NONE)
        c = cfg.new_block(f, 1, BranchKind.JUMP)
        a.succ_false = c.bid  # skips b
        b.succ_false = c.bid
        c.succ_true = a.bid
        cfg.entry_bid = a.bid
        cfg.validate()
        program = link(cfg, [0, 1, 2])
        # a falls through into a stub that jumps to c.
        stub = program.linear_blocks[1]
        assert stub.is_stub
        assert stub.target_addr == program.addr_of_bid[2]

    def test_call_return_point_stub(self):
        cfg = ControlFlowGraph()
        callee_f = cfg.new_function("callee")
        callee = cfg.new_block(callee_f, 2, BranchKind.RET)
        f = cfg.new_function("f")
        call = cfg.new_block(f, 2, BranchKind.CALL)
        other = cfg.new_block(f, 3, BranchKind.NONE)
        ret_point = cfg.new_block(f, 2, BranchKind.JUMP)
        call.succ_true = callee.bid
        call.succ_false = ret_point.bid  # NOT adjacent in the order below
        other.succ_false = ret_point.bid
        ret_point.succ_true = call.bid
        cfg.entry_bid = call.bid
        cfg.validate()
        program = link(cfg, [1, 2, 3, 0])
        call_lb = program.block_starting_at(program.addr_of_bid[1])
        following = program.linear_blocks[call_lb.index + 1]
        assert following.is_stub
        assert following.target_addr == program.addr_of_bid[3]


class TestAddressLookup:
    def test_block_containing_offsets(self):
        program = link(hammock_cfg(), [0, 1, 2, 3])
        lb0 = program.linear_blocks[0]
        lb, off = program.block_containing(lb0.addr + 2 * INSTRUCTION_BYTES)
        assert lb is lb0
        assert off == 2

    def test_block_containing_rejects_outside(self):
        program = link(hammock_cfg(), [0, 1, 2, 3])
        with pytest.raises(ValueError):
            program.block_containing(program.end_address)
        with pytest.raises(ValueError):
            program.block_containing(program.base_address - 4)

    def test_branch_addr_is_last_slot(self):
        program = link(hammock_cfg(), [0, 1, 2, 3])
        lb = program.linear_blocks[0]
        assert lb.branch_addr == lb.addr + (lb.size - 1) * INSTRUCTION_BYTES

    def test_none_block_has_no_branch_addr(self):
        program = link(hammock_cfg(), [0, 1, 2, 3])
        then_lb = program.block_starting_at(program.addr_of_bid[1])
        assert then_lb.branch_addr is None


class TestInstrMeta:
    def test_meta_length_matches_block(self):
        program = link(hammock_cfg(), [0, 1, 2, 3], seed=3)
        for lb in program.linear_blocks:
            assert len(program.instr_meta(lb)) == lb.size

    def test_terminal_slot_is_branch(self):
        program = link(hammock_cfg(), [0, 1, 2, 3], seed=3)
        cond_lb = program.linear_blocks[0]
        meta = program.instr_meta(cond_lb)
        assert meta[-1][0] == int(InstrClass.BRANCH)

    def test_meta_deterministic_across_layouts(self):
        """Origin blocks carry identical instructions in any layout."""
        cfg = hammock_cfg()
        p1 = link(cfg, [0, 1, 2, 3], seed=9)
        cfg2 = hammock_cfg()
        p2 = link(cfg2, [0, 2, 1, 3], seed=9)
        lb1 = p1.block_starting_at(p1.addr_of_bid[1])
        lb2 = p2.block_starting_at(p2.addr_of_bid[1])
        assert p1.instr_meta(lb1) == p2.instr_meta(lb2)

    def test_dep_distances_bounded(self):
        program = link(hammock_cfg(), [0, 1, 2, 3], seed=5)
        for lb in program.linear_blocks:
            for meta in program.instr_meta(lb):
                _, _, d1, d2, *_ = meta
                assert 0 <= d1 <= 64
                assert 0 <= d2 <= 64


@settings(max_examples=25, deadline=None)
@given(order_seed=st.integers(0, 10_000))
def test_property_any_order_links_consistently(order_seed):
    """Every permutation yields a well-formed image: contiguous blocks,
    resolvable targets, and all origin blocks present."""
    import random

    cfg = hammock_cfg()
    order = [0, 1, 2, 3]
    random.Random(order_seed).shuffle(order)
    program = link(cfg, order)
    assert set(program.addr_of_bid) == {0, 1, 2, 3}
    for lb in program.linear_blocks:
        if lb.kind in (BranchKind.COND, BranchKind.JUMP, BranchKind.CALL):
            target_lb = program.block_starting_at(lb.target_addr)
            assert target_lb is not None, "targets must start blocks"
