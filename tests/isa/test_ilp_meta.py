"""Property tests for instruction metadata synthesis."""

from hypothesis import given, settings, strategies as st

from repro.common.types import InstrClass
from repro.isa.cfg import IlpProfile
from repro.isa.layout import natural_order
from repro.isa.program import link
from repro.isa.workloads import build_benchmark


def collect_meta(scale=0.25, seed=3):
    cfg = build_benchmark("gzip", scale=scale)
    program = link(cfg, natural_order(cfg), seed=seed)
    meta = []
    for lb in program.linear_blocks[:400]:
        meta.extend(program.instr_meta(lb))
    return meta, cfg.ilp


class TestClassMix:
    def test_fractions_roughly_match_profile(self):
        meta, ilp = collect_meta()
        n = len(meta)
        loads = sum(1 for m in meta if m[0] == int(InstrClass.LOAD))
        stores = sum(1 for m in meta if m[0] == int(InstrClass.STORE))
        assert abs(loads / n - ilp.load_fraction) < 0.08
        assert abs(stores / n - ilp.store_fraction) < 0.06

    def test_memory_ops_have_address_patterns(self):
        meta, _ = collect_meta()
        for m in meta:
            cls, _, _, _, base, stride, span = m
            if cls in (int(InstrClass.LOAD), int(InstrClass.STORE)):
                assert span > 0
            else:
                assert base == stride == span == 0

    def test_dep_distance_mean_sane(self):
        meta, ilp = collect_meta()
        d1s = [m[2] for m in meta if m[2] > 0]
        assert d1s, "some instructions must carry dependences"
        mean = sum(d1s) / len(d1s)
        assert 1.0 < mean < 3 * ilp.mean_dep_distance

    def test_caching_returns_same_object(self):
        cfg = build_benchmark("gzip", scale=0.2)
        program = link(cfg, natural_order(cfg), seed=1)
        lb = program.linear_blocks[0]
        assert program.instr_meta(lb) is program.instr_meta(lb)
