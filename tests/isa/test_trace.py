"""Tests for CFG profiling and ISA-level trace walking."""

import pytest

from repro.common.types import BranchKind
from repro.isa.layout import natural_order, optimized_order
from repro.isa.program import link
from repro.isa.trace import TraceWalker, profile_edges
from repro.isa.workloads import build_benchmark, prepare_program, ref_trace_seed

from helpers import build_tiny_cfg


class TestProfileEdges:
    def test_counts_sum_to_walk_length(self, tiny_cfg):
        edges = profile_edges(tiny_cfg, seed=1, n_blocks=500)
        assert sum(edges.values()) == 500

    def test_edges_are_real(self, tiny_cfg):
        edges = profile_edges(tiny_cfg, seed=1, n_blocks=500)
        for (src, dst) in edges:
            assert dst in tiny_cfg.block(src).successors() or (
                tiny_cfg.block(src).kind is BranchKind.RET
            )

    def test_hot_edge_dominates(self, tiny_cfg):
        # A -> B (90%) should dominate A -> C (10%).
        edges = profile_edges(tiny_cfg, seed=1, n_blocks=2000)
        assert edges[(0, 1)] > 3 * edges.get((0, 2), 0)

    def test_deterministic(self, tiny_cfg):
        e1 = profile_edges(tiny_cfg, seed=42, n_blocks=300)
        e2 = profile_edges(build_tiny_cfg(), seed=42, n_blocks=300)
        assert e1 == e2


class TestTraceWalker:
    def test_control_transfers_consistent(self, tiny_program):
        walker = TraceWalker(tiny_program, seed=5)
        prev = None
        for _ in range(500):
            dyn = next(walker)
            if prev is not None:
                assert dyn.addr == prev.next_addr
            if dyn.taken:
                assert dyn.next_addr != dyn.lb.fallthrough_addr or (
                    dyn.kind is BranchKind.RET
                )
            else:
                assert dyn.next_addr == dyn.lb.fallthrough_addr
            prev = dyn

    def test_only_controls_can_take(self, tiny_program):
        walker = TraceWalker(tiny_program, seed=5)
        for _ in range(300):
            dyn = next(walker)
            if dyn.kind is BranchKind.NONE:
                assert not dyn.taken

    def test_walker_counts(self, tiny_program):
        walker = TraceWalker(tiny_program, seed=5)
        for _ in range(100):
            next(walker)
        assert walker.blocks_walked == 100
        assert walker.instructions_walked == sum(
            dyn_size for dyn_size in [0]
        ) or walker.instructions_walked > 0

    def test_deterministic(self, tiny_program):
        w1 = TraceWalker(tiny_program, seed=11)
        w2 = TraceWalker(tiny_program, seed=11)
        for _ in range(200):
            a, b = next(w1), next(w2)
            assert (a.addr, a.taken, a.next_addr) == (b.addr, b.taken, b.next_addr)

    def test_different_seeds_diverge(self, tiny_program):
        w1 = TraceWalker(tiny_program, seed=1)
        w2 = TraceWalker(tiny_program, seed=2)
        path1 = [next(w1).addr for _ in range(200)]
        path2 = [next(w2).addr for _ in range(200)]
        assert path1 != path2


class TestLayoutInvariance:
    """The same seed must walk the same CFG-level path in any layout."""

    def test_origin_sequence_identical_across_layouts(self):
        cfg = build_benchmark("gzip", scale=0.3)
        base = link(cfg, natural_order(cfg), seed=1)
        profile = profile_edges(cfg, seed=99, n_blocks=20000)
        opt = link(cfg, optimized_order(cfg, profile), seed=1)

        w_base = TraceWalker(base, seed=7)
        w_opt = TraceWalker(opt, seed=7)

        def origins(walker, n):
            out = []
            while len(out) < n:
                dyn = next(walker)
                if dyn.lb.origin is not None:
                    out.append(dyn.lb.origin)
            return out

        assert origins(w_base, 2000) == origins(w_opt, 2000)

    def test_instruction_counts_close_across_layouts(self):
        """Stubs add a few instructions, but the real work is identical."""
        base = prepare_program("gzip", optimized=False, scale=0.3)
        opt = prepare_program("gzip", optimized=True, scale=0.3)
        seed = ref_trace_seed("gzip")

        def real_instructions(program, n_origin_blocks):
            walker = TraceWalker(program, seed)
            total = 0
            seen = 0
            while seen < n_origin_blocks:
                dyn = next(walker)
                if dyn.lb.origin is not None:
                    total += dyn.size
                    seen += 1
            return total

        a = real_instructions(base, 5000)
        b = real_instructions(opt, 5000)
        assert a == b
