"""Tests for CFG construction and validation."""

import pytest

from repro.common.types import BranchKind
from repro.isa.behavior import Bernoulli, IndirectChooser
from repro.isa.cfg import ControlFlowGraph, IlpProfile


def minimal_cfg() -> ControlFlowGraph:
    cfg = ControlFlowGraph()
    f = cfg.new_function("f")
    a = cfg.new_block(f, 3, BranchKind.NONE)
    b = cfg.new_block(f, 2, BranchKind.JUMP)
    a.succ_false = b.bid
    b.succ_true = a.bid
    cfg.entry_bid = a.bid
    return cfg


class TestConstruction:
    def test_bids_sequential(self):
        cfg = minimal_cfg()
        assert [blk.bid for blk in cfg.blocks] == [0, 1]

    def test_function_entry_is_first_block(self):
        cfg = minimal_cfg()
        assert cfg.functions[0].entry == 0

    def test_total_instructions(self):
        assert minimal_cfg().total_instructions == 5

    def test_rejects_empty_block(self):
        cfg = ControlFlowGraph()
        f = cfg.new_function("f")
        with pytest.raises(ValueError):
            cfg.new_block(f, 0)


class TestValidation:
    def test_minimal_valid(self):
        minimal_cfg().validate()

    def test_missing_entry(self):
        cfg = minimal_cfg()
        cfg.entry_bid = None
        with pytest.raises(ValueError):
            cfg.validate()

    def test_cond_needs_behavior(self):
        cfg = ControlFlowGraph()
        f = cfg.new_function("f")
        a = cfg.new_block(f, 2, BranchKind.COND)
        b = cfg.new_block(f, 1, BranchKind.JUMP)
        b.succ_true = a.bid
        a.succ_true = b.bid
        a.succ_false = b.bid
        cfg.entry_bid = a.bid
        with pytest.raises(ValueError, match="COND without behavior"):
            cfg.validate()

    def test_cond_needs_both_successors(self):
        cfg = ControlFlowGraph()
        f = cfg.new_function("f")
        a = cfg.new_block(f, 2, BranchKind.COND, behavior=Bernoulli(0.5))
        a.succ_true = a.bid
        cfg.entry_bid = a.bid
        with pytest.raises(ValueError):
            cfg.validate()

    def test_call_must_target_function_entry(self):
        cfg = ControlFlowGraph()
        f = cfg.new_function("f")
        a = cfg.new_block(f, 2, BranchKind.CALL)
        b = cfg.new_block(f, 1, BranchKind.JUMP)
        b.succ_true = a.bid
        a.succ_true = b.bid  # b is not a function entry
        a.succ_false = b.bid
        cfg.entry_bid = a.bid
        with pytest.raises(ValueError, match="not a\n?.*function entry|is not"):
            cfg.validate()

    def test_ind_needs_chooser(self):
        cfg = ControlFlowGraph()
        f = cfg.new_function("f")
        a = cfg.new_block(f, 2, BranchKind.IND, ind_targets=[0])
        cfg.entry_bid = a.bid
        with pytest.raises(ValueError, match="IND without chooser"):
            cfg.validate()

    def test_ind_chooser_arity_mismatch(self):
        cfg = ControlFlowGraph()
        f = cfg.new_function("f")
        a = cfg.new_block(
            f, 2, BranchKind.IND, ind_targets=[0],
            ind_chooser=IndirectChooser([1, 1]),
        )
        cfg.entry_bid = a.bid
        with pytest.raises(ValueError, match="arity"):
            cfg.validate()


class TestSuccessors:
    def test_cond_successors(self):
        cfg = ControlFlowGraph()
        f = cfg.new_function("f")
        a = cfg.new_block(f, 2, BranchKind.COND, behavior=Bernoulli(0.5))
        a.succ_true = 5
        a.succ_false = 7
        assert a.successors() == [5, 7]

    def test_ret_has_no_static_successors(self):
        cfg = ControlFlowGraph()
        f = cfg.new_function("f")
        r = cfg.new_block(f, 1, BranchKind.RET)
        assert r.successors() == []

    def test_census(self):
        cfg = minimal_cfg()
        census = cfg.static_branch_census()
        assert census == {"NONE": 1, "JUMP": 1}


class TestIlpProfile:
    def test_defaults_valid(self):
        IlpProfile()

    def test_rejects_fraction_overflow(self):
        with pytest.raises(ValueError):
            IlpProfile(load_fraction=0.6, store_fraction=0.5)

    def test_rejects_bad_dep_distance(self):
        with pytest.raises(ValueError):
            IlpProfile(mean_dep_distance=0.5)
