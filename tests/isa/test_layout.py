"""Tests for baseline and optimized code layout."""

import pytest

from repro.isa.layout import (
    layout_quality,
    natural_order,
    optimized_order,
)
from repro.isa.trace import profile_edges
from repro.isa.workloads import build_benchmark

from helpers import build_tiny_cfg


class TestNaturalOrder:
    def test_is_permutation(self, tiny_cfg):
        order = natural_order(tiny_cfg)
        assert sorted(order) == list(range(tiny_cfg.num_blocks))

    def test_creation_order_within_function(self, tiny_cfg):
        assert natural_order(tiny_cfg) == [0, 1, 2, 3, 4]


class TestOptimizedOrder:
    def test_is_permutation(self, tiny_cfg):
        profile = profile_edges(tiny_cfg, seed=1, n_blocks=2000)
        order = optimized_order(tiny_cfg, profile)
        assert sorted(order) == list(range(tiny_cfg.num_blocks))

    def test_hot_successor_becomes_adjacent(self, tiny_cfg):
        """A->B is the hot edge (90%); optimization must place B after A."""
        profile = profile_edges(tiny_cfg, seed=1, n_blocks=2000)
        order = optimized_order(tiny_cfg, profile)
        pos = {bid: i for i, bid in enumerate(order)}
        assert pos[1] == pos[0] + 1

    def test_quality_improves(self):
        cfg = build_benchmark("gzip", scale=0.3)
        profile = profile_edges(cfg, seed=1, n_blocks=30000)
        natural_q = layout_quality(cfg, natural_order(cfg), profile)
        optimized_q = layout_quality(cfg, optimized_order(cfg, profile),
                                     profile)
        assert optimized_q > natural_q

    def test_cold_blocks_pushed_back(self):
        cfg = build_benchmark("gzip", scale=0.3)
        profile = profile_edges(cfg, seed=1, n_blocks=30000)
        order = optimized_order(cfg, profile)
        executed = set()
        for (src, dst) in profile:
            executed.add(src)
            executed.add(dst)
        pos = {bid: i for i, bid in enumerate(order)}
        cold = [bid for bid in order if bid not in executed]
        hot = [bid for bid in order if bid in executed]
        if cold and hot:
            import statistics
            assert statistics.mean(pos[b] for b in cold) > statistics.mean(
                pos[b] for b in hot
            )

    def test_entry_function_first(self):
        cfg = build_benchmark("gzip", scale=0.3)
        profile = profile_edges(cfg, seed=1, n_blocks=10000)
        order = optimized_order(cfg, profile)
        assert cfg.block(order[0]).func_id == cfg.block(cfg.entry_bid).func_id

    def test_deterministic(self):
        cfg = build_benchmark("vpr", scale=0.3)
        profile = profile_edges(cfg, seed=1, n_blocks=10000)
        assert optimized_order(cfg, profile) == optimized_order(cfg, profile)

    def test_empty_profile_still_valid(self, tiny_cfg):
        order = optimized_order(tiny_cfg, {})
        assert sorted(order) == list(range(tiny_cfg.num_blocks))


class TestLayoutQuality:
    def test_zero_for_empty_profile(self, tiny_cfg):
        assert layout_quality(tiny_cfg, natural_order(tiny_cfg), {}) == 0.0

    def test_bounded(self, tiny_cfg):
        profile = profile_edges(tiny_cfg, seed=1, n_blocks=1000)
        q = layout_quality(tiny_cfg, natural_order(tiny_cfg), profile)
        assert 0.0 <= q <= 1.0
