"""Tests for the synthetic SPECint2000 workload generators."""

import pytest

from repro.common.types import BranchKind
from repro.isa.trace import TraceWalker, profile_edges
from repro.isa.workloads import (
    SPEC_BENCHMARKS,
    WorkloadSpec,
    benchmark_spec,
    build_benchmark,
    prepare_program,
    ref_trace_seed,
)


class TestRegistry:
    def test_eleven_benchmarks(self):
        assert len(SPEC_BENCHMARKS) == 11

    def test_order_matches_figure9(self):
        assert SPEC_BENCHMARKS == (
            "gzip", "vpr", "gcc", "crafty", "parser", "eon",
            "perlbmk", "gap", "vortex", "bzip2", "twolf",
        )

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            benchmark_spec("mcf")  # floating-point-free but not in SPECint's 11 here

    def test_specs_have_distinct_seeds(self):
        seeds = {benchmark_spec(b).seed for b in SPEC_BENCHMARKS}
        assert len(seeds) == 11


@pytest.mark.parametrize("name", SPEC_BENCHMARKS)
class TestEveryBenchmarkBuilds:
    def test_builds_and_validates(self, name):
        cfg = build_benchmark(name, scale=0.2)
        cfg.validate()
        assert cfg.num_blocks > 50

    def test_walkable(self, name):
        program = prepare_program(name, optimized=False, scale=0.2)
        walker = TraceWalker(program, ref_trace_seed(name))
        for _ in range(500):
            next(walker)


class TestDeterminism:
    def test_same_seed_same_cfg(self):
        a = build_benchmark("gzip", scale=0.3)
        b = build_benchmark("gzip", scale=0.3)
        assert a.num_blocks == b.num_blocks
        for blk_a, blk_b in zip(a.blocks, b.blocks):
            assert blk_a.size == blk_b.size
            assert blk_a.kind == blk_b.kind
            assert blk_a.succ_true == blk_b.succ_true
            assert blk_a.succ_false == blk_b.succ_false

    def test_scale_changes_footprint(self):
        small = build_benchmark("gzip", scale=0.2)
        big = build_benchmark("gzip", scale=1.0)
        assert big.num_blocks > 2 * small.num_blocks


class TestFootprintOrdering:
    def test_gcc_bigger_than_gzip(self):
        gcc = prepare_program("gcc", optimized=False, scale=0.4)
        gzip = prepare_program("gzip", optimized=False, scale=0.4)
        assert gcc.code_bytes > 3 * gzip.code_bytes

    def test_vortex_large(self):
        vortex = prepare_program("vortex", optimized=False, scale=0.4)
        bzip2 = prepare_program("bzip2", optimized=False, scale=0.4)
        assert vortex.code_bytes > 2 * bzip2.code_bytes


class TestDynamicCharacter:
    def test_gzip_block_size_realistic(self):
        program = prepare_program("gzip", optimized=False, scale=0.3)
        walker = TraceWalker(program, ref_trace_seed("gzip"))
        instrs = blocks = 0
        for _ in range(4000):
            dyn = next(walker)
            instrs += dyn.size
            blocks += 1
        assert 3.0 < instrs / blocks < 9.0

    def test_calls_and_returns_balance(self):
        program = prepare_program("eon", optimized=False, scale=0.3)
        walker = TraceWalker(program, ref_trace_seed("eon"))
        calls = rets = 0
        for _ in range(20000):
            dyn = next(walker)
            if dyn.kind is BranchKind.CALL:
                calls += 1
            elif dyn.kind is BranchKind.RET:
                rets += 1
        assert calls > 10
        assert abs(calls - rets) <= max(20, calls * 0.5)

    def test_perlbmk_has_indirects(self):
        program = prepare_program("perlbmk", optimized=False, scale=0.3)
        walker = TraceWalker(program, ref_trace_seed("perlbmk"))
        inds = sum(
            1 for _ in range(20000) if next(walker).kind is BranchKind.IND
        )
        assert inds > 10


class TestTrainRefSplit:
    def test_profile_seed_differs_from_ref(self):
        spec = benchmark_spec("gzip")
        assert ref_trace_seed("gzip") != spec.seed

    def test_layouts_differ(self):
        base = prepare_program("gzip", optimized=False, scale=0.3)
        opt = prepare_program("gzip", optimized=True, scale=0.3)
        base_order = [lb.origin for lb in base.linear_blocks if not lb.is_stub]
        opt_order = [lb.origin for lb in opt.linear_blocks if not lb.is_stub]
        assert base_order != opt_order
