"""Shared helpers importable from any test module."""

from __future__ import annotations

import dataclasses

from repro.common.types import BranchKind
from repro.isa.behavior import Bernoulli, LoopTrip
from repro.isa.cfg import ControlFlowGraph, IlpProfile


def result_digest(result) -> dict:
    """``asdict`` of a SimulationResult minus its ``extras``.

    ``extras`` carries run diagnostics (chain hit rates) that depend on
    shared-cache warmth and engine mode — it is ``compare=False`` on the
    dataclass for the same reason — so bit-identity assertions compare
    everything except it.
    """
    d = dataclasses.asdict(result)
    d.pop("extras", None)
    return d


def build_tiny_cfg() -> ControlFlowGraph:
    """A hand-built CFG mirroring Figure 1 of the paper.

    A loop whose body is an if-then-else (hammock): blocks A (cond),
    B (hot side), C (cold side), D (loop tail, back edge to A), plus a
    jump block that restarts the loop forever on exit.
    """
    cfg = ControlFlowGraph(ilp=IlpProfile())
    main = cfg.new_function("main")
    a = cfg.new_block(main, 4, BranchKind.COND, behavior=Bernoulli(0.10))
    b = cfg.new_block(main, 6, BranchKind.NONE)
    c = cfg.new_block(main, 5, BranchKind.NONE)
    d = cfg.new_block(main, 3, BranchKind.COND,
                      behavior=LoopTrip(10.0, jitter=0.0))
    # A: cond True -> C (cold 10%), False -> B (hot 90%)
    a.succ_true = c.bid
    a.succ_false = b.bid
    b.succ_false = d.bid
    c.succ_false = d.bid
    d.succ_true = a.bid   # back edge
    exit_block = cfg.new_block(main, 2, BranchKind.JUMP)
    exit_block.succ_true = a.bid
    d.succ_false = exit_block.bid
    cfg.entry_bid = a.bid
    cfg.validate()
    return cfg
