"""Tests for the set-associative cache."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.params import CacheParams
from repro.memory.cache import Cache


def small_cache(assoc=2, sets=4, line=64) -> Cache:
    return Cache(CacheParams(size_bytes=assoc * sets * line,
                             assoc=assoc, line_bytes=line))


class TestBasicBehaviour:
    def test_cold_miss_then_hit(self):
        c = small_cache()
        assert c.access(0x1000) is False
        assert c.access(0x1000) is True

    def test_same_line_different_offsets_hit(self):
        c = small_cache(line=64)
        c.access(0x1000)
        assert c.access(0x103C) is True

    def test_adjacent_lines_are_distinct(self):
        c = small_cache(line=64)
        c.access(0x1000)
        assert c.access(0x1040) is False

    def test_probe_does_not_fill(self):
        c = small_cache()
        assert c.probe(0x1000) is False
        assert c.access(0x1000) is False  # still a miss

    def test_fill_then_probe(self):
        c = small_cache()
        c.fill(0x1000)
        assert c.probe(0x1000) is True

    def test_invalidate_all(self):
        c = small_cache()
        c.access(0x1000)
        c.invalidate_all()
        assert c.probe(0x1000) is False


class TestLRU:
    def test_eviction_order(self):
        c = small_cache(assoc=2, sets=1, line=64)
        c.access(0x000)   # A
        c.access(0x040)   # B
        c.access(0x000)   # touch A -> B is LRU
        c.access(0x080)   # C evicts B
        assert c.probe(0x000) is True
        assert c.probe(0x040) is False
        assert c.probe(0x080) is True

    def test_capacity_respected(self):
        c = small_cache(assoc=2, sets=4)
        for i in range(100):
            c.access(i * 64)
        assert c.resident_lines() <= 8

    def test_stats(self):
        c = small_cache()
        c.access(0x1000)
        c.access(0x1000)
        assert c.stats["accesses"] == 2
        assert c.stats["misses"] == 1
        assert c.miss_rate == pytest.approx(0.5)


class TestWorkingSets:
    def test_working_set_within_capacity_all_hits(self):
        c = small_cache(assoc=4, sets=16, line=64)  # 4KB
        lines = [i * 64 for i in range(32)]
        for addr in lines:
            c.access(addr)
        hits = sum(c.access(addr) for addr in lines)
        assert hits == len(lines)

    def test_streaming_larger_than_capacity_all_misses(self):
        c = small_cache(assoc=2, sets=4, line=64)  # 512B
        misses = 0
        for round_ in range(3):
            for i in range(64):
                misses += not c.access(i * 64)
        assert misses == 3 * 64  # LRU streams never re-hit


@settings(max_examples=50)
@given(st.lists(st.integers(min_value=0, max_value=1 << 20), min_size=1,
                max_size=300))
def test_property_hit_iff_recently_used(addresses):
    """A reference hits iff its line is among the `assoc` most recently
    used distinct lines mapping to the same set (true-LRU semantics)."""
    assoc, sets, line = 2, 4, 64
    c = small_cache(assoc=assoc, sets=sets, line=line)
    model = {}  # set index -> list of tags, MRU first
    for addr in addresses:
        line_addr = addr // line
        index = line_addr % sets
        tag = line_addr // sets
        ways = model.setdefault(index, [])
        expected_hit = tag in ways
        assert c.access(addr) == expected_hit
        if tag in ways:
            ways.remove(tag)
        ways.insert(0, tag)
        del ways[assoc:]


@settings(max_examples=30)
@given(st.lists(st.integers(min_value=0, max_value=1 << 18), min_size=1,
                max_size=200))
def test_property_resident_lines_bounded(addresses):
    c = small_cache(assoc=2, sets=8)
    for addr in addresses:
        c.access(addr)
    assert c.resident_lines() <= 16


class TestFastCounters:
    """The hot-path counters are plain ints; stats is a derived view."""

    def test_int_attributes_track_events(self):
        c = small_cache(assoc=2, sets=1)
        c.access(0x000)           # miss
        c.access(0x000)           # hit
        c.access(0x040)           # miss
        c.access(0x080)           # miss + eviction
        assert c.accesses == 4
        assert c.misses == 3
        assert c.evictions == 1

    def test_stats_view_matches_ints(self):
        c = small_cache()
        for i in range(20):
            c.access((i % 6) * 64)
        stats = c.stats
        assert stats["accesses"] == c.accesses == 20
        assert stats["misses"] == c.misses
        assert stats["evictions"] == c.evictions

    def test_fill_counts_evictions_only(self):
        c = small_cache(assoc=2, sets=1)
        c.fill(0x000)
        c.fill(0x040)
        c.fill(0x080)  # evicts
        assert c.accesses == 0
        assert c.misses == 0
        assert c.evictions == 1

    def test_probe_touches_nothing(self):
        c = small_cache()
        c.probe(0x1000)
        assert c.accesses == 0
        assert c.misses == 0

    def test_miss_rate_from_ints(self):
        c = small_cache()
        assert c.miss_rate == 0.0
        c.access(0x1000)
        c.access(0x1000)
        c.access(0x1000)
        assert c.miss_rate == pytest.approx(1 / 3)

    def test_mru_fast_path_preserves_lru(self):
        """Repeated MRU touches must not disturb the LRU order."""
        c = small_cache(assoc=2, sets=1)
        c.access(0x000)   # A
        c.access(0x040)   # B (MRU)
        c.access(0x040)   # B again via the fast path
        c.access(0x040)   # and again
        c.access(0x080)   # C evicts A (the true LRU), not B
        assert c.probe(0x040) is True
        assert c.probe(0x000) is False
