"""Tests for the Table 2 memory hierarchy."""

import pytest

from repro.common.params import default_memory
from repro.memory.hierarchy import MemoryHierarchy


@pytest.fixture
def mem() -> MemoryHierarchy:
    return MemoryHierarchy(default_memory(8))


class TestInstructionSide:
    def test_cold_fetch_pays_memory(self, mem):
        latency = mem.fetch_line(0x1000)
        assert latency == 1 + 15 + 100

    def test_warm_fetch_is_l1_hit(self, mem):
        mem.fetch_line(0x1000)
        assert mem.fetch_line(0x1000) == 1

    def test_l2_hit_after_l1_eviction(self, mem):
        mem.fetch_line(0x1000)
        # Evict from 64KB 2-way L1I by touching two conflicting lines.
        line = mem.params.il1.line_bytes
        way_stride = mem.params.il1.num_sets * line
        mem.fetch_line(0x1000 + way_stride)
        mem.fetch_line(0x1000 + 2 * way_stride)
        latency = mem.fetch_line(0x1000)
        assert latency == 1 + 15  # L2 still holds it

    def test_wide_line_spans_multiple_l2_lines(self, mem):
        # 128B L1I line = two 64B L2 lines; both get filled.
        mem.fetch_line(0x2000)
        assert mem.l2.probe(0x2000)
        assert mem.l2.probe(0x2040)

    def test_prefetch_fills_without_latency_result(self, mem):
        mem.instruction_prefetch(0x3000)
        assert mem.il1.probe(0x3000)
        assert mem.fetch_line(0x3000) == 1


class TestDataSide:
    def test_cold_load(self, mem):
        assert mem.data_access(0x50000) == 1 + 15 + 100

    def test_warm_load(self, mem):
        mem.data_access(0x50000)
        assert mem.data_access(0x50000) == 1

    def test_store_fills_too(self, mem):
        mem.data_access(0x60000, is_store=True)
        assert mem.data_access(0x60000) == 1

    def test_stats_summary_keys(self, mem):
        mem.fetch_line(0x1000)
        mem.data_access(0x2000)
        stats = mem.stats_summary()
        for key in ("il1_misses", "dl1_misses", "l2_misses",
                    "il1_miss_rate", "dl1_miss_rate"):
            assert key in stats


class TestSharedL2:
    def test_instruction_and_data_share_l2(self, mem):
        mem.fetch_line(0x1000)       # fills L2 with 0x1000 (as data too)
        latency = mem.data_access(0x1000)
        assert latency == 1 + 15     # L2 hit thanks to the I-side fill
