"""Shared fixtures for the test suite."""

from __future__ import annotations

import os
import signal
import sys

import pytest

sys.path.insert(0, os.path.dirname(__file__))

from helpers import build_tiny_cfg  # noqa: E402

from repro.common.params import default_machine  # noqa: E402
from repro.exec import faults as _faults  # noqa: E402
from repro.isa.layout import natural_order  # noqa: E402
from repro.isa.program import link  # noqa: E402
from repro.isa.workloads import prepare_program  # noqa: E402
from repro.memory.hierarchy import MemoryHierarchy  # noqa: E402


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "faults(timeout=N): fault-injection test; enforced with a "
        "SIGALRM watchdog (default 120s) so an injected hang that "
        "escapes its in-test deadline cannot wedge the whole suite",
    )


@pytest.fixture(autouse=True)
def _isolated_artifact_store(monkeypatch):
    """Tier-1 tests must never read or write a user's artifact store.

    Store-aware code paths only engage when a store is passed
    explicitly; clearing ``REPRO_STORE`` guarantees the CLI's env
    default cannot point tests at ``~``-level state.  Tests that want a
    store use ``tmp_path``.  ``REPRO_ACCEL`` is cleared for the same
    reason: the suite runs the default engine mode (accel with
    interpreter fallback) regardless of the invoking shell, and tests
    that pin a mode pass ``engine_mode`` explicitly.
    """
    monkeypatch.delenv("REPRO_STORE", raising=False)
    # Nor at anyone's live store *peers*: federated read-through must
    # be something a test sets up explicitly.
    monkeypatch.delenv("REPRO_STORE_PEERS", raising=False)
    monkeypatch.delenv("REPRO_ACCEL", raising=False)
    # Observability runs at its default (recording enabled) regardless
    # of the invoking shell; tests that pin a state set ``REPRO_OBS``
    # themselves.
    monkeypatch.delenv("REPRO_OBS", raising=False)
    # Same reasoning for the chained-template switch: the suite runs
    # with chains at their default (on); tests that pin a state set
    # ``REPRO_CHAINS`` themselves.
    monkeypatch.delenv("REPRO_CHAINS", raising=False)
    # And for fault injection: a leftover $REPRO_FAULTS plan must never
    # leak into (or out of) a test.  ``refresh`` re-reads the cleared
    # env and uninstalls the store write hook.
    had_plan = os.environ.get(_faults.FAULTS_ENV) is not None
    monkeypatch.delenv(_faults.FAULTS_ENV, raising=False)
    if had_plan:
        _faults.refresh()
    yield
    if os.environ.get(_faults.FAULTS_ENV) is not None:  # pragma: no cover
        monkeypatch.delenv(_faults.FAULTS_ENV, raising=False)
    _faults.refresh()


@pytest.fixture(autouse=True)
def _faults_watchdog(request):
    """Per-test wall-clock limit for ``@pytest.mark.faults`` tests.

    pytest-timeout is not available in this environment, so the limit
    is hand-rolled with ``SIGALRM``: an injected hang whose in-test
    deadline machinery is itself broken fails the one test instead of
    wedging the suite.  The pool's own attempt deadlines nest under
    this alarm (they restore and re-arm it on exit).
    """
    marker = request.node.get_closest_marker("faults")
    if marker is None or not hasattr(signal, "SIGALRM"):
        yield
        return
    limit = float(marker.kwargs.get("timeout", 120.0))

    def _expired(signum, frame):
        pytest.fail(f"faults watchdog: test exceeded {limit}s", pytrace=False)

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.setitimer(signal.ITIMER_REAL, limit)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture
def tiny_cfg():
    return build_tiny_cfg()


@pytest.fixture
def tiny_program(tiny_cfg):
    return link(tiny_cfg, natural_order(tiny_cfg), seed=7)


@pytest.fixture(scope="session")
def gzip_programs():
    """(base, optimized) gzip images at a small scale, built once."""
    return (
        prepare_program("gzip", optimized=False, scale=0.4),
        prepare_program("gzip", optimized=True, scale=0.4),
    )


@pytest.fixture
def machine8():
    return default_machine(8)


@pytest.fixture
def mem8(machine8):
    return MemoryHierarchy(machine8.memory)
