"""Setup shim.

This environment has setuptools but not the ``wheel`` package, so PEP 660
editable installs (which must build a wheel) fail.  Keeping a setup.py and
omitting ``[build-system]`` from pyproject.toml lets ``pip install -e .``
fall back to the legacy ``setup.py develop`` path, which works offline.
"""

from setuptools import setup

setup()
